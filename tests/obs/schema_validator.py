"""Stdlib validator for the ``repro.obs/v1`` JSONL event schema.

Used two ways:

* imported by the obs test suite (``validate_event`` / ``validate_file``);
* run by CI as a script over a real trace::

      python tests/obs/schema_validator.py trace.jsonl

  exits non-zero and prints one line per violation if any event does
  not conform to the schema documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

NUMBER = (int, float)

#: event type -> {field: (types, required)}
_SPEC: Dict[str, Dict[str, tuple]] = {
    "meta": {
        "schema": ((str,), True),
        "nn_profiling": ((bool,), True),
        "attrs": ((dict,), False),
    },
    "span": {
        "name": ((str,), True),
        "span_id": ((int,), True),
        "parent_id": ((int, type(None)), True),
        "t_wall": (NUMBER, True),
        "duration": (NUMBER, True),
        "thread": ((str,), True),
        "attrs": ((dict,), True),
        "sim_time": (NUMBER + (type(None),), True),
    },
    "round_metrics": {
        "round": ((int,), True),
        "sim_time": (NUMBER + (type(None),), True),
        "metrics": ((dict,), True),
    },
    "run_summary": {
        "sim_time": (NUMBER + (type(None),), True),
        "metrics": ((dict,), True),
        "spans_emitted": ((int,), True),
    },
}

_METRIC_KINDS = ("counter", "gauge", "histogram")


def _validate_metrics(metrics: Any, where: str, errors: List[str]) -> None:
    if not isinstance(metrics, dict):
        errors.append(f"{where}: 'metrics' must be an object")
        return
    for mid, m in metrics.items():
        if not isinstance(m, dict) or m.get("kind") not in _METRIC_KINDS:
            errors.append(f"{where}: metric {mid!r} has no valid 'kind'")
            continue
        kind = m["kind"]
        if kind == "counter" and not isinstance(m.get("total"), NUMBER):
            errors.append(f"{where}: counter {mid!r} missing numeric 'total'")
        if kind == "histogram":
            counts, buckets = m.get("counts"), m.get("buckets")
            if not isinstance(counts, list) or not isinstance(buckets, list):
                errors.append(
                    f"{where}: histogram {mid!r} missing 'counts'/'buckets'"
                )
            elif len(counts) != len(buckets) + 1:
                errors.append(
                    f"{where}: histogram {mid!r} needs len(counts) == "
                    f"len(buckets) + 1"
                )


def validate_event(event: Any, where: str = "event") -> List[str]:
    """All schema violations for one parsed event (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"{where}: not a JSON object"]
    etype = event.get("type")
    spec = _SPEC.get(etype) if isinstance(etype, str) else None
    if spec is None:
        return [f"{where}: unknown event type {etype!r}"]
    for field, (types, required) in spec.items():
        if field not in event:
            if required:
                errors.append(f"{where}: {etype} event missing field {field!r}")
            continue
        if not isinstance(event[field], types):
            errors.append(
                f"{where}: {etype}.{field} has type "
                f"{type(event[field]).__name__}, expected one of "
                f"{tuple(t.__name__ for t in types)}"
            )
    known = set(spec) | {"type"}
    for field in event:
        if field not in known:
            errors.append(f"{where}: {etype} event has unknown field {field!r}")
    if etype == "span" and isinstance(event.get("duration"), NUMBER):
        if event["duration"] < 0:
            errors.append(f"{where}: span duration is negative")
    if etype in ("round_metrics", "run_summary") and "metrics" in event:
        _validate_metrics(event["metrics"], where, errors)
    return errors


def validate_file(path: str) -> List[str]:
    """Schema violations across a whole JSONL trace file."""
    errors: List[str] = []
    first_type: Optional[str] = None
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: invalid JSON ({exc})")
                continue
            count += 1
            if first_type is None and isinstance(event, dict):
                first_type = event.get("type")
            errors.extend(validate_event(event, where))
    if count == 0:
        errors.append(f"{path}: trace contains no events")
    elif first_type != "meta":
        errors.append(f"{path}: first event must be 'meta', got {first_type!r}")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python tests/obs/schema_validator.py TRACE.jsonl",
              file=sys.stderr)
        return 2
    errors = validate_file(argv[0])
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"{argv[0]}: ok")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
