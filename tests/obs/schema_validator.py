"""Stdlib validator for the ``repro.obs/v1`` JSONL event schema.

Used two ways:

* imported by the obs test suite (``validate_event`` / ``validate_file``);
* run by CI as a script over a real trace::

      python tests/obs/schema_validator.py trace.jsonl
      python tests/obs/schema_validator.py --ledger run.ledger.jsonl

  exits non-zero and prints one line per violation if any event does
  not conform to the schema documented in ``docs/OBSERVABILITY.md``
  (``repro.obs/v1`` traces, or ``repro.ledger/v1`` run ledgers with
  ``--ledger``).

Beyond structure, traces are checked against the *registries* of span
and metric names the instrumentation is allowed to emit
(:data:`KNOWN_SPAN_NAMES` / :data:`KNOWN_METRIC_NAMES`): a typo'd or
undocumented name is a schema violation, which keeps the docs and the
code from drifting apart.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

NUMBER = (int, float)

#: event type -> {field: (types, required)}
_SPEC: Dict[str, Dict[str, tuple]] = {
    "meta": {
        "schema": ((str,), True),
        "nn_profiling": ((bool,), True),
        "attrs": ((dict,), False),
    },
    "span": {
        "name": ((str,), True),
        "span_id": ((int,), True),
        "parent_id": ((int, type(None)), True),
        "t_wall": (NUMBER, True),
        "duration": (NUMBER, True),
        "thread": ((str,), True),
        # set only on externally-reported spans (mp workers)
        "process": ((str,), False),
        "attrs": ((dict,), True),
        "sim_time": (NUMBER + (type(None),), True),
    },
    "round_metrics": {
        "round": ((int,), True),
        "sim_time": (NUMBER + (type(None),), True),
        "metrics": ((dict,), True),
    },
    "run_summary": {
        "sim_time": (NUMBER + (type(None),), True),
        "metrics": ((dict,), True),
        "spans_emitted": ((int,), True),
    },
}

_METRIC_KINDS = ("counter", "gauge", "histogram")

#: every span name the instrumentation may emit (docs/OBSERVABILITY.md)
KNOWN_SPAN_NAMES = frozenset(
    {
        "run",
        "estimate_smoothness",
        "round",
        "eval",
        "local_solve",
        "cohort_solve",
    }
)

#: every metric base name (the part before an optional ``{key}``)
KNOWN_METRIC_NAMES = frozenset(
    {
        "fl.client.local_steps",
        "fl.client.grad_evals",
        "fl.client.achieved_theta",
        "fl.client.achieved_theta_dist",
        "fl.run.smoothness_L",
        "fl.run.step_size_eta",
        "fl.round.straggler_gap",
        "fl.round.grad_dissimilarity",
        "fl.registry.size",
        "fl.cohort.lru_hits",
        "fl.cohort.hydrations",
        "fl.cohort.evictions",
        "fl.executor.batched_clients",
        "fl.executor.fallback_clients",
        "nn.conv2d.im2col_seconds",
        "nn.conv2d.col2im_seconds",
        "nn.layer.forward_seconds",
        "nn.layer.backward_seconds",
        "obs.monitor.alerts",
        "backend.shm.created",
        "backend.shm.attached",
        "backend.shm.unlinked",
    }
)

#: ledger event types, in the only order sections may appear
_LEDGER_SCHEMA = "repro.ledger/v1"
_LEDGER_TYPES = ("manifest", "round", "alert", "hotspots", "end")


def _metric_base(mid: str) -> str:
    """``name{key}`` -> ``name`` (metric ids embed the optional key)."""
    return mid.split("{", 1)[0]


def _validate_metrics(metrics: Any, where: str, errors: List[str]) -> None:
    if not isinstance(metrics, dict):
        errors.append(f"{where}: 'metrics' must be an object")
        return
    for mid, m in metrics.items():
        if _metric_base(mid) not in KNOWN_METRIC_NAMES:
            errors.append(f"{where}: unregistered metric name {mid!r}")
        if not isinstance(m, dict) or m.get("kind") not in _METRIC_KINDS:
            errors.append(f"{where}: metric {mid!r} has no valid 'kind'")
            continue
        kind = m["kind"]
        if kind == "counter" and not isinstance(m.get("total"), NUMBER):
            errors.append(f"{where}: counter {mid!r} missing numeric 'total'")
        if kind == "histogram":
            counts, buckets = m.get("counts"), m.get("buckets")
            if not isinstance(counts, list) or not isinstance(buckets, list):
                errors.append(
                    f"{where}: histogram {mid!r} missing 'counts'/'buckets'"
                )
            elif len(counts) != len(buckets) + 1:
                errors.append(
                    f"{where}: histogram {mid!r} needs len(counts) == "
                    f"len(buckets) + 1"
                )


def validate_event(event: Any, where: str = "event") -> List[str]:
    """All schema violations for one parsed event (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"{where}: not a JSON object"]
    etype = event.get("type")
    spec = _SPEC.get(etype) if isinstance(etype, str) else None
    if spec is None:
        return [f"{where}: unknown event type {etype!r}"]
    for field, (types, required) in spec.items():
        if field not in event:
            if required:
                errors.append(f"{where}: {etype} event missing field {field!r}")
            continue
        if not isinstance(event[field], types):
            errors.append(
                f"{where}: {etype}.{field} has type "
                f"{type(event[field]).__name__}, expected one of "
                f"{tuple(t.__name__ for t in types)}"
            )
    known = set(spec) | {"type"}
    for field in event:
        if field not in known:
            errors.append(f"{where}: {etype} event has unknown field {field!r}")
    if etype == "span":
        if isinstance(event.get("duration"), NUMBER) and event["duration"] < 0:
            errors.append(f"{where}: span duration is negative")
        name = event.get("name")
        if isinstance(name, str) and name not in KNOWN_SPAN_NAMES:
            errors.append(f"{where}: unregistered span name {name!r}")
    if etype in ("round_metrics", "run_summary") and "metrics" in event:
        _validate_metrics(event["metrics"], where, errors)
    return errors


def validate_file(path: str) -> List[str]:
    """Schema violations across a whole JSONL trace file."""
    errors: List[str] = []
    first_type: Optional[str] = None
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: invalid JSON ({exc})")
                continue
            count += 1
            if first_type is None and isinstance(event, dict):
                first_type = event.get("type")
            errors.extend(validate_event(event, where))
    if count == 0:
        errors.append(f"{path}: trace contains no events")
    elif first_type != "meta":
        errors.append(f"{path}: first event must be 'meta', got {first_type!r}")
    return errors


def validate_ledger_file(path: str) -> List[str]:
    """Contract violations across a ``repro.ledger/v1`` file.

    Deliberately an *independent* implementation of the checks in
    :meth:`repro.obs.ledger.LedgerReader.validate` (this script stays
    stdlib-standalone for CI), so the two validators cross-check each
    other's reading of the schema.  Torn final lines are legal — that
    is the crash-recovery contract — but any earlier parse failure is
    corruption.
    """
    errors: List[str] = []
    lines: List[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                lines.append(line)
    if not lines:
        return [f"{path}: ledger contains no events"]
    events: List[Dict[str, Any]] = []
    for i, line in enumerate(lines):
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn final line: tolerated by contract
            errors.append(f"{path}:{i + 1}: corrupt mid-file line")
            return errors
        if not isinstance(event, dict):
            errors.append(f"{path}:{i + 1}: event is not an object")
            return errors
        events.append(event)
    if not events:
        return errors + [f"{path}: only a torn line, nothing committed"]
    first = events[0]
    if first.get("type") != "manifest":
        errors.append(f"{path}: first event must be 'manifest'")
    elif first.get("schema") != _LEDGER_SCHEMA:
        errors.append(
            f"{path}: manifest schema {first.get('schema')!r} != "
            f"{_LEDGER_SCHEMA!r}"
        )
    prev_cursor = -1
    prev_round = 0
    for i, event in enumerate(events):
        where = f"{path}: event {i}"
        etype = event.get("type")
        if etype not in _LEDGER_TYPES:
            errors.append(f"{where}: unknown ledger event type {etype!r}")
            continue
        if etype == "manifest":
            if i != 0:
                errors.append(f"{where}: manifest must be the first event")
            continue
        cursor = event.get("cursor")
        if not isinstance(cursor, int) or cursor <= prev_cursor:
            errors.append(
                f"{where}: cursor {cursor!r} not strictly increasing "
                f"(previous {prev_cursor})"
            )
        else:
            prev_cursor = cursor
        if etype == "round":
            rnd = event.get("round")
            if not isinstance(rnd, int) or rnd < prev_round:
                errors.append(
                    f"{where}: round {rnd!r} must be a non-decreasing "
                    f"integer (previous {prev_round})"
                )
            else:
                prev_round = rnd
            if not isinstance(event.get("record"), dict):
                errors.append(f"{where}: round event missing 'record'")
        if etype == "alert":
            for field in ("monitor", "severity", "message"):
                if not isinstance(event.get(field), str):
                    errors.append(
                        f"{where}: alert event missing string {field!r}"
                    )
        if etype == "end" and i != len(events) - 1:
            errors.append(f"{where}: end event must be the last event")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    ledger = "--ledger" in argv
    argv = [a for a in argv if a != "--ledger"]
    if len(argv) != 1:
        print(
            "usage: python tests/obs/schema_validator.py "
            "[--ledger] FILE.jsonl",
            file=sys.stderr,
        )
        return 2
    validator = validate_ledger_file if ledger else validate_file
    errors = validator(argv[0])
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"{argv[0]}: ok")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
