"""End-to-end instrumentation tests over the federated stack.

These run real (tiny) federated experiments with telemetry enabled and
check the acceptance-level properties: traces validate against the
schema, round spans account for the run wall time, straggler gaps reach
``RoundRecord``, solver counters reconcile with history, and the nn
profiling hook produces per-layer timings only when asked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import make_mlp_model
from repro.obs import (
    InMemorySink,
    JsonlSink,
    LedgerReader,
    RunLedger,
    default_monitor_suite,
    telemetry,
)
from repro.obs.report import render_report
from tests.obs.schema_validator import validate_file, validate_ledger_file


def _config(**overrides):
    base = dict(
        algorithm="fedproxvr-sarah",
        num_rounds=4,
        num_local_steps=5,
        beta=5.0,
        mu=0.1,
        batch_size=16,
        seed=0,
        eval_every=1,
    )
    base.update(overrides)
    return FederatedRunConfig(**base)


class TestTracedRun:
    @pytest.fixture()
    def traced_run(self, tiny_dataset, tiny_model_factory, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = InMemorySink()
        telemetry.configure([JsonlSink(str(path)), sink])
        try:
            history, _ = run_federated(
                tiny_dataset, tiny_model_factory, _config()
            )
        finally:
            telemetry.shutdown()
        return history, path, sink

    def test_trace_validates_and_report_renders(self, traced_run):
        history, path, _ = traced_run
        assert validate_file(str(path)) == []
        report = render_report(str(path), top=5)
        assert "span tree" in report
        assert "local_solve" in report
        assert "round" in report

    def test_round_durations_sum_to_run_wall_time(self, traced_run):
        _, _, sink = traced_run
        spans = sink.by_type("span")
        run = [e for e in spans if e["name"] == "run"]
        rounds = [e for e in spans if e["name"] == "round"]
        assert len(run) == 1 and len(rounds) == 4
        round_total = sum(e["duration"] for e in rounds)
        # rounds are the run span's only substantive children: their
        # durations must account for (almost) all of the run wall time
        assert round_total <= run[0]["duration"] + 1e-9
        assert round_total >= 0.8 * run[0]["duration"]

    def test_straggler_gap_recorded_in_history(self, traced_run):
        history, _, _ = traced_run
        for record in history.records:
            assert record.straggler_gap is not None
            assert record.straggler_gap >= 0.0

    def test_counters_reconcile_with_history(self, traced_run):
        history, _, sink = traced_run
        num_clients = 6
        expected_evals = sum(
            r.mean_gradient_evaluations * num_clients for r in history.records
        )
        summary = sink.by_type("run_summary")[0]
        total = summary["metrics"]["fl.client.grad_evals{fedproxvr-sarah}"]["total"]
        assert total == pytest.approx(expected_evals)

    def test_round_metric_events_cover_every_round(self, traced_run):
        _, _, sink = traced_run
        rounds = [e["round"] for e in sink.by_type("round_metrics")]
        assert rounds == [1, 2, 3, 4]
        for event in sink.by_type("round_metrics"):
            assert event["sim_time"] is not None

    def test_sim_time_stamped_on_round_spans(self, traced_run):
        _, _, sink = traced_run
        rounds = [e for e in sink.by_type("span") if e["name"] == "round"]
        sim_times = [e["sim_time"] for e in rounds]
        assert all(t is not None for t in sim_times)
        assert sim_times == sorted(sim_times)  # simulated time is monotone


class TestDisabledRunUnchanged:
    def test_no_events_and_no_straggler_gap(self, tiny_dataset, tiny_model_factory):
        assert not telemetry.enabled
        history, _ = run_federated(tiny_dataset, tiny_model_factory, _config())
        for record in history.records:
            assert record.straggler_gap is None

    def test_results_identical_with_and_without_telemetry(
        self, tiny_dataset, tiny_model_factory
    ):
        history_off, w_off = run_federated(
            tiny_dataset, tiny_model_factory, _config()
        )
        telemetry.configure([InMemorySink()])
        try:
            history_on, w_on = run_federated(
                tiny_dataset, tiny_model_factory, _config()
            )
        finally:
            telemetry.shutdown()
        np.testing.assert_array_equal(w_off, w_on)
        assert history_off.series("train_loss") == history_on.series("train_loss")


class TestLedgeredRun:
    def _run(self, dataset, factory, tmp_path, **config_overrides):
        path = tmp_path / "run.ledger.jsonl"
        ledger = RunLedger(str(path))
        monitors = default_monitor_suite()
        history, w = run_federated(
            dataset, factory, _config(**config_overrides),
            ledger=ledger, monitors=monitors,
        )
        return history, w, str(path), monitors

    def test_ledger_validates_and_mirrors_history(
        self, tiny_dataset, tiny_model_factory, tmp_path
    ):
        history, _, path, monitors = self._run(
            tiny_dataset, tiny_model_factory, tmp_path
        )
        assert validate_ledger_file(path) == []
        reader = LedgerReader(str(path))
        assert reader.validate() == []
        assert reader.status == "completed"
        rounds = reader.rounds()
        assert [e["round"] for e in rounds] == [1, 2, 3, 4]
        assert [e["record"]["train_loss"] for e in rounds] == (
            history.series("train_loss")
        )
        # a healthy tiny run must be alert-silent
        assert monitors.alerts == []
        assert reader.alerts() == []
        # manifest records the resolved config and RNG entropy
        manifest = reader.manifest
        assert manifest["config"]["algorithm"] == "fedproxvr-sarah"
        assert set(manifest["entropy"]) >= {"seed"}

    def test_grad_dissimilarity_committed_each_round(
        self, tiny_dataset, tiny_model_factory, tmp_path
    ):
        history, _, path, _ = self._run(
            tiny_dataset, tiny_model_factory, tmp_path
        )
        for event in LedgerReader(path).rounds():
            gamma = event["record"]["grad_dissimilarity"]
            assert gamma is not None and gamma >= 1.0  # Jensen: Γ̂ ≥ 1
        assert history.records[0].grad_dissimilarity == (
            LedgerReader(path).rounds()[0]["record"]["grad_dissimilarity"]
        )

    def test_unevaluated_rounds_commit_light_records(
        self, tiny_dataset, tiny_model_factory, tmp_path
    ):
        _, _, path, _ = self._run(
            tiny_dataset, tiny_model_factory, tmp_path, eval_every=2
        )
        reader = LedgerReader(path)
        by_round = {e["round"]: e for e in reader.rounds()}
        assert set(by_round) == {1, 2, 3, 4}
        assert not by_round[1]["evaluated"]
        assert by_round[2]["evaluated"]
        assert "train_loss" not in by_round[1]["record"]
        assert "train_loss" in by_round[2]["record"]

    def test_bit_identical_with_ledger_and_monitors_on(
        self, tiny_dataset, tiny_model_factory, tmp_path
    ):
        history_off, w_off = run_federated(
            tiny_dataset, tiny_model_factory, _config()
        )
        _, w_on, _, _ = self._run(tiny_dataset, tiny_model_factory, tmp_path)
        np.testing.assert_array_equal(w_off, w_on)
        assert history_off.series("train_loss") == [
            e["record"]["train_loss"]
            for e in LedgerReader(
                str(tmp_path / "run.ledger.jsonl")
            ).rounds()
        ]


class TestThreadExecutorRun:
    def test_traced_thread_run_matches_sequential(
        self, tiny_dataset, tiny_model_factory, tmp_path
    ):
        path = tmp_path / "thread.jsonl"
        telemetry.configure([JsonlSink(str(path))])
        try:
            history_thread, w_thread = run_federated(
                tiny_dataset, tiny_model_factory,
                _config(executor="thread", max_workers=4),
            )
        finally:
            telemetry.shutdown()
        history_seq, w_seq = run_federated(
            tiny_dataset, tiny_model_factory, _config()
        )
        np.testing.assert_allclose(w_thread, w_seq)
        assert validate_file(str(path)) == []


class TestNNProfiling:
    def _mlp_factory(self, dataset):
        return lambda: make_mlp_model(
            dataset.num_features, dataset.num_classes, (8,), seed=0
        )

    def test_layer_timings_only_when_opted_in(self, tiny_dataset):
        factory = self._mlp_factory(tiny_dataset)
        config = _config(num_rounds=1, algorithm="fedavg", mu=0.1)

        telemetry.configure([InMemorySink()])
        try:
            run_federated(tiny_dataset, factory, config)
            snap_plain = telemetry.metrics.snapshot()
        finally:
            telemetry.shutdown()
        assert not any(m.startswith("nn.layer.") for m in snap_plain)

        telemetry.configure([InMemorySink()], nn_profiling=True)
        try:
            run_federated(tiny_dataset, factory, config)
            snap_prof = telemetry.metrics.snapshot()
        finally:
            telemetry.shutdown()
        forward = [m for m in snap_prof if m.startswith("nn.layer.forward_seconds")]
        backward = [m for m in snap_prof if m.startswith("nn.layer.backward_seconds")]
        assert forward and backward
        # per-layer keys like "0:Dense" / "1:ReLU" appear in the metric id
        assert any("Dense" in m for m in forward)
        for mid in forward:
            assert snap_prof[mid]["count"] > 0
