"""Tests for the telemetry sinks (JSONL, CSV, stderr, in-memory)."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.obs import (
    CsvMetricsSink,
    InMemorySink,
    JsonlSink,
    StderrReporter,
    telemetry,
)
from tests.obs.schema_validator import validate_file


class TestInMemorySink:
    def test_collects_in_order(self):
        sink = InMemorySink()
        sink.emit({"type": "meta", "schema": "x", "nn_profiling": False})
        sink.emit({"type": "span", "name": "a"})
        assert [e["type"] for e in sink.events] == ["meta", "span"]
        assert [e["name"] for e in sink.by_type("span")] == ["a"]


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"type": "meta", "schema": "s", "nn_profiling": False})
        sink.emit({"type": "round_metrics", "round": 1, "sim_time": None,
                   "metrics": {}})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["type"] == "meta"

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(RuntimeError):
            sink.emit({"type": "meta"})

    def test_full_session_produces_schema_valid_file(self, tmp_path):
        path = tmp_path / "session.jsonl"
        telemetry.configure([JsonlSink(str(path))])
        with telemetry.span("run"):
            with telemetry.span("round", s=1):
                telemetry.counter_add("fl.client.grad_evals", 3)
            telemetry.round_finished(1)
        telemetry.shutdown()
        assert validate_file(str(path)) == []


class TestCsvMetricsSink:
    def _metrics(self):
        return {
            "c": {"kind": "counter", "total": 5.0},
            "g": {"kind": "gauge", "last": 1.5, "count": 1, "sum": 1.5,
                  "min": 1.5, "max": 1.5, "mean": 1.5},
        }

    def test_round_and_run_rows(self, tmp_path):
        path = tmp_path / "m.csv"
        sink = CsvMetricsSink(str(path))
        sink.emit({"type": "round_metrics", "round": 2, "sim_time": None,
                   "metrics": self._metrics()})
        sink.emit({"type": "run_summary", "sim_time": None,
                   "metrics": self._metrics(), "spans_emitted": 0})
        sink.emit({"type": "span", "name": "ignored"})  # spans are skipped
        sink.close()
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        round_rows = [r for r in rows if r["scope"] == "round"]
        assert {r["metric"] for r in round_rows} == {"c", "g"}
        assert round_rows[0]["round"] == "2"
        run_rows = [r for r in rows if r["scope"] == "run"]
        assert {(r["metric"], r["value"]) for r in run_rows} == {
            ("c", "5.0"), ("g", "1.5"),
        }

    def test_close_idempotent(self, tmp_path):
        sink = CsvMetricsSink(str(tmp_path / "m.csv"))
        sink.close()
        sink.close()


class TestStderrReporter:
    def test_round_line_and_summary(self):
        buf = io.StringIO()
        sink = StderrReporter(stream=buf)
        sink.emit({"type": "round_metrics", "round": 1, "sim_time": None,
                   "metrics": {"c": {"kind": "counter", "total": 3.0}}})
        sink.emit({"type": "run_summary", "sim_time": None, "spans_emitted": 2,
                   "metrics": {"h": {"kind": "histogram", "count": 2,
                                     "sum": 0.2, "mean": 0.1, "max": 0.15,
                                     "buckets": [1.0], "counts": [2, 0]}}})
        out = buf.getvalue()
        assert "round 1" in out and "c=3" in out
        assert "run summary" in out and "h" in out
