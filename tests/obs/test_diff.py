"""Tests for cross-run ledger diffing (``repro obs-diff``)."""

from __future__ import annotations

import pytest

from repro.obs.diff import diff_ledgers, render_diff
from repro.obs.ledger import RunLedger


def write_ledger(
    path,
    *,
    config=None,
    losses=(3.0, 2.0, 1.5),
    wall_time=0.1,
    hotspots=None,
    alerts=0,
):
    ledger = RunLedger(str(path), fsync=False)
    ledger.write_manifest(dict(config or {"algorithm": "fedavg", "seed": 1}))
    for s, loss in enumerate(losses, start=1):
        ledger.commit_round(
            s,
            {
                "round_index": s,
                "train_loss": loss,
                "grad_norm": loss / 2.0,
                "wall_time": wall_time,
            },
            sim_time=float(s),
        )
    for i in range(alerts):
        ledger.alert(len(losses), "divergence", f"alert {i}")
    if hotspots:
        ledger.hotspots(
            [
                {"name": name, "self_seconds": sec, "total_seconds": sec,
                 "count": 1}
                for name, sec in hotspots.items()
            ]
        )
    ledger.close()
    return str(path)


class TestDiffLedgers:
    def test_identical_runs_diff_clean(self, tmp_path):
        a = write_ledger(tmp_path / "a.jsonl")
        b = write_ledger(tmp_path / "b.jsonl")
        result = diff_ledgers(a, b)
        assert result["verdict"] == "ok"
        assert result["shared_rounds"] == 3
        assert result["config_deltas"] == {}
        assert result["same_source"] is True
        assert result["metrics"]["train_loss"]["delta"] == 0.0

    def test_config_deltas_surfaced(self, tmp_path):
        a = write_ledger(
            tmp_path / "a.jsonl", config={"algorithm": "fedavg", "seed": 1}
        )
        b = write_ledger(
            tmp_path / "b.jsonl", config={"algorithm": "fedavg", "seed": 2}
        )
        result = diff_ledgers(a, b)
        assert result["config_deltas"] == {"seed": {"a": 1, "b": 2}}

    def test_wall_time_regression_flips_verdict(self, tmp_path):
        a = write_ledger(tmp_path / "a.jsonl", wall_time=0.1)
        b = write_ledger(tmp_path / "b.jsonl", wall_time=0.2)
        result = diff_ledgers(a, b, rel_threshold=0.25)
        assert result["verdict"] == "regression"
        assert "wall_time" in result["regressions"]
        # statistical fields are reported, never judged
        assert "train_loss" not in result["regressions"]

    def test_wall_time_improvement_is_ok(self, tmp_path):
        a = write_ledger(tmp_path / "a.jsonl", wall_time=0.2)
        b = write_ledger(tmp_path / "b.jsonl", wall_time=0.1)
        assert diff_ledgers(a, b)["verdict"] == "ok"

    def test_loss_drift_reported_but_not_judged(self, tmp_path):
        a = write_ledger(tmp_path / "a.jsonl", losses=(3.0, 2.0, 1.5))
        b = write_ledger(tmp_path / "b.jsonl", losses=(3.0, 2.5, 2.4))
        result = diff_ledgers(a, b)
        assert result["verdict"] == "ok"
        assert result["metrics"]["train_loss"]["delta"] > 0

    def test_hotspot_regression(self, tmp_path):
        a = write_ledger(
            tmp_path / "a.jsonl", hotspots={"local_solve": 0.10, "eval": 0.01}
        )
        b = write_ledger(
            tmp_path / "b.jsonl", hotspots={"local_solve": 0.50, "eval": 0.01}
        )
        result = diff_ledgers(a, b)
        assert result["hotspots"]["local_solve"]["regression"]
        assert "span:local_solve" in result["regressions"]
        assert result["verdict"] == "regression"

    def test_sub_noise_hotspot_delta_ignored(self, tmp_path):
        # 3x relative jump but under the absolute noise floor: timer jitter
        a = write_ledger(tmp_path / "a.jsonl", hotspots={"eval": 0.0005})
        b = write_ledger(tmp_path / "b.jsonl", hotspots={"eval": 0.0015})
        assert diff_ledgers(a, b)["verdict"] == "ok"

    def test_structural_span_change_not_a_regression(self, tmp_path):
        # executor swap: time moves between spans, total judged elsewhere
        a = write_ledger(tmp_path / "a.jsonl", hotspots={"local_solve": 0.1})
        b = write_ledger(tmp_path / "b.jsonl", hotspots={"cohort_solve": 0.1})
        result = diff_ledgers(a, b)
        assert result["verdict"] == "ok"
        assert result["hotspots"]["cohort_solve"]["status"] == "new"
        assert result["hotspots"]["local_solve"]["status"] == "vanished"
        assert result["hotspots"]["cohort_solve"]["rel_delta"] is None

    def test_alert_counts_surfaced(self, tmp_path):
        a = write_ledger(tmp_path / "a.jsonl")
        b = write_ledger(tmp_path / "b.jsonl", alerts=2)
        result = diff_ledgers(a, b)
        assert result["alerts_a"] == 0
        assert result["alerts_b"] == 2

    def test_invalid_ledger_raises(self, tmp_path):
        a = write_ledger(tmp_path / "a.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "round", "cursor": 0, "round": 1}\n')
        with pytest.raises(ValueError, match="invalid ledger"):
            diff_ledgers(a, str(bad))


class TestRenderDiff:
    def test_render_contains_key_sections(self, tmp_path):
        a = write_ledger(
            tmp_path / "a.jsonl",
            config={"seed": 1},
            hotspots={"local_solve": 0.1},
        )
        b = write_ledger(
            tmp_path / "b.jsonl",
            config={"seed": 2},
            wall_time=0.5,
            hotspots={"local_solve": 0.3, "cohort_solve": 0.2},
        )
        text = render_diff(diff_ledgers(a, b))
        assert "ledger diff:" in text
        assert "config deltas:" in text
        assert "seed: 1 -> 2" in text
        assert "wall_time" in text
        assert "<< regression" in text
        assert "new" in text
        assert "verdict: REGRESSION" in text

    def test_render_ok_verdict(self, tmp_path):
        a = write_ledger(tmp_path / "a.jsonl")
        b = write_ledger(tmp_path / "b.jsonl")
        assert "verdict: ok" in render_diff(diff_ledgers(a, b))
