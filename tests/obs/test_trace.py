"""Tests for the tracing core (spans, nesting, no-op path)."""

from __future__ import annotations

import threading

from repro.obs import NOOP_SPAN, Span, Tracer, telemetry


class TestTracer:
    def test_span_records_duration_and_name(self):
        finished = []
        tracer = Tracer(finished.append)
        with tracer.span("work", kind="test") as sp:
            pass
        assert finished == [sp]
        assert sp.name == "work"
        assert sp.attrs == {"kind": "test"}
        assert sp.duration >= 0.0
        assert sp.parent_id is None

    def test_nesting_assigns_parent_ids(self):
        finished = []
        tracer = Tracer(finished.append)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        assert inner.parent_id == outer.span_id
        # children finish (and emit) before their parents
        assert [s.name for s in finished] == ["inner", "outer"]

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            detached = tracer.span("b", parent=a)
        with detached as b:
            pass
        assert b.parent_id == a.span_id

    def test_set_attribute_and_exception_marking(self):
        finished = []
        tracer = Tracer(finished.append)
        try:
            with tracer.span("boom") as sp:
                sp.set_attribute("x", 1)
                raise ValueError("no")
        except ValueError:
            pass
        assert sp.attrs["x"] == 1
        assert sp.attrs["error"] == "ValueError"
        assert finished  # emitted despite the exception
        assert tracer.current() is None

    def test_stacks_are_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["worker_current"] = tracer.current()
            with tracer.span("w") as sp:
                seen["worker_span_parent"] = sp.parent_id

        with tracer.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # the worker thread starts with an empty stack: no implicit parent
        assert seen["worker_current"] is None
        assert seen["worker_span_parent"] is None

    def test_span_ids_unique(self):
        tracer = Tracer()
        ids = set()
        for _ in range(100):
            with tracer.span("s") as sp:
                ids.add(sp.span_id)
        assert len(ids) == 100

    def test_to_event_schema_fields(self):
        tracer = Tracer()
        with tracer.span("e", a=1) as sp:
            pass
        event = sp.to_event()
        assert event["type"] == "span"
        assert event["name"] == "e"
        assert event["attrs"] == {"a": 1}
        assert event["parent_id"] is None
        assert isinstance(event["span_id"], int)


class TestDisabledFacade:
    def test_disabled_span_is_shared_noop(self):
        assert not telemetry.enabled
        sp = telemetry.span("anything", x=1)
        assert sp is NOOP_SPAN
        with sp as inner:
            inner.set_attribute("ignored", True)
        assert sp.duration == 0.0
        assert telemetry.current_span() is None

    def test_disabled_metrics_are_dropped(self):
        telemetry.metrics.reset()  # the singleton registry outlives sessions
        telemetry.counter_add("c", 5)
        telemetry.gauge_set("g", 1.0)
        telemetry.observe("h", 0.1)
        assert telemetry.metrics.snapshot() == {}

    def test_round_finished_noop_when_disabled(self):
        telemetry.round_finished(3)  # must not raise or emit


class TestEnabledFacade:
    def test_real_span_when_enabled(self, memory_session):
        with telemetry.span("round", s=1) as sp:
            assert isinstance(sp, Span)
            assert telemetry.current_span() is sp
        spans = memory_session.by_type("span")
        assert [s["name"] for s in spans] == ["round"]
        assert spans[0]["attrs"] == {"s": 1}

    def test_configure_twice_rejected(self, memory_session):
        import pytest

        with pytest.raises(RuntimeError):
            telemetry.configure([])

    def test_shutdown_emits_run_summary_and_disables(self, memory_session):
        telemetry.counter_add("n", 2)
        telemetry.shutdown()
        assert not telemetry.enabled
        summaries = memory_session.by_type("run_summary")
        assert len(summaries) == 1
        assert summaries[0]["metrics"]["n"]["total"] == 2.0

    def test_sim_clock_stamps_events(self, memory_session):
        class FakeClock:
            def snapshot(self):
                return (12.5, 3, 4.0)

        telemetry.attach_sim_clock(FakeClock())
        with telemetry.span("round"):
            pass
        span = memory_session.by_type("span")[0]
        assert span["sim_time"] == 12.5
