"""Tests for the append-only run ledger (``repro.ledger/v1``).

Covers the durability contract the checkpoint/resume control plane
depends on: cursor monotonicity, torn-final-line crash recovery,
mid-file corruption detection, and the reader's resume arithmetic.
The standalone CI validator is cross-checked against the in-package
reader on the same files.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerError,
    LedgerReader,
    RunLedger,
    package_digest,
)
from tests.obs.schema_validator import validate_ledger_file


def _write_run(path, *, rounds=3, alerts=0, status="completed"):
    ledger = RunLedger(str(path), fsync=False)
    ledger.write_manifest(
        {"algorithm": "fedavg", "tau": 5},
        entropy={"seed": 0},
        attrs={"dataset": "toy"},
    )
    for s in range(1, rounds + 1):
        ledger.commit_round(
            s, {"round_index": s, "train_loss": 3.0 / s}, sim_time=float(s)
        )
    for i in range(alerts):
        ledger.alert(rounds, "theorem1_contraction", f"alert {i}")
    ledger.close(status)
    return ledger


class TestRunLedger:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = _write_run(path, rounds=3, alerts=1, status="completed")
        reader = LedgerReader(str(path))
        assert reader.validate() == []
        assert reader.manifest["schema"] == LEDGER_SCHEMA
        assert reader.manifest["run_id"] == ledger.run_id
        assert reader.manifest["config"] == {"algorithm": "fedavg", "tau": 5}
        assert reader.manifest["entropy"] == {"seed": 0}
        assert len(reader.rounds()) == 3
        assert len(reader.alerts()) == 1
        assert reader.status == "completed"
        assert reader.last_committed_round == 3
        assert not reader.truncated

    def test_cursors_strictly_increase(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=4, alerts=2)
        reader = LedgerReader(str(path))
        cursors = [
            e["cursor"] for e in reader.events if e.get("type") != "manifest"
        ]
        assert cursors == sorted(cursors)
        assert len(set(cursors)) == len(cursors)
        assert reader.last_cursor == cursors[-1]

    def test_manifest_must_come_first_and_only_once(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "run.jsonl"), fsync=False)
        ledger.write_manifest({})
        with pytest.raises(LedgerError, match="already written"):
            ledger.write_manifest({})
        ledger.close()

    def test_write_after_close_raises(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "run.jsonl"), fsync=False)
        ledger.write_manifest({})
        ledger.close()
        with pytest.raises(LedgerError, match="closed"):
            ledger.commit_round(1, {})

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(str(path), fsync=False)
        ledger.write_manifest({})
        ledger.close()
        ledger.close("failed")  # ignored: first close wins
        reader = LedgerReader(str(path))
        assert reader.status == "completed"
        assert len(reader.by_type("end")) == 1

    def test_context_manager_stamps_failure(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with RunLedger(str(path), fsync=False) as ledger:
                ledger.write_manifest({})
                ledger.commit_round(1, {"train_loss": 1.0})
                raise RuntimeError("boom")
        reader = LedgerReader(str(path))
        assert reader.validate() == []
        assert reader.status == "failed"

    def test_package_digest_is_stable_hex(self):
        a, b = package_digest(), package_digest()
        assert a == b
        assert len(a) == 64
        int(a, 16)  # hex


class TestCrashRecovery:
    def test_torn_final_line_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=3, status="completed")
        # Simulate a crash mid-write of a 4th round: the end event is
        # gone and the last line is half a JSON object.
        lines = path.read_text().splitlines()[:-1]
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        reader = LedgerReader(str(path))
        assert reader.truncated
        assert reader.validate() == []
        assert len(reader.rounds()) == 2  # the torn 3rd round is lost
        resume = reader.resume_point()
        assert resume["round"] == 2
        assert resume["next_round"] == 3
        assert resume["truncated"] is True
        assert resume["status"] is None  # no end event: unclean shutdown
        assert validate_ledger_file(str(path)) == []

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=3)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:10]  # corrupt a committed round, not the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match="corrupt mid-file"):
            LedgerReader(str(path))
        assert validate_ledger_file(str(path)) != []

    def test_resume_point_on_fresh_ledger(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(str(path), fsync=False)
        ledger.write_manifest({})
        ledger.close()
        resume = LedgerReader(str(path)).resume_point()
        assert resume["round"] is None
        assert resume["next_round"] == 1

    def test_tail_from_cursor(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=4)
        reader = LedgerReader(str(path))
        tailed = list(reader.tail(from_cursor=2))
        assert all(e["cursor"] >= 2 for e in tailed)
        assert {e["round"] for e in tailed if e["type"] == "round"} == {3, 4}


class TestValidation:
    def _events(self, path):
        return [json.loads(line) for line in path.read_text().splitlines()]

    def _rewrite(self, path, events):
        path.write_text(
            "\n".join(json.dumps(e) for e in events) + "\n"
        )

    def test_detects_non_monotonic_cursor(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=3)
        events = self._events(path)
        events[2]["cursor"] = events[3]["cursor"]
        self._rewrite(path, events)
        errors = LedgerReader(str(path)).validate()
        assert any("monotonic" in e for e in errors)
        assert any(
            "increasing" in e for e in validate_ledger_file(str(path))
        )

    def test_detects_decreasing_round(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=3)
        events = self._events(path)
        events[3]["round"] = 1
        self._rewrite(path, events)
        assert any(
            "non-decreasing" in e
            for e in LedgerReader(str(path)).validate()
        )

    def test_detects_missing_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=1)
        self._rewrite(path, self._events(path)[1:])
        assert any(
            "manifest" in e for e in LedgerReader(str(path)).validate()
        )
        assert any(
            "manifest" in e for e in validate_ledger_file(str(path))
        )

    def test_detects_wrong_schema_tag(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=1)
        events = self._events(path)
        events[0]["schema"] = "repro.ledger/v999"
        self._rewrite(path, events)
        assert any(
            "schema" in e for e in LedgerReader(str(path)).validate()
        )

    def test_detects_events_after_end(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=2)
        events = self._events(path)
        events.append(dict(events[2], cursor=events[-1]["cursor"] + 1))
        self._rewrite(path, events)
        assert any(
            "last event" in e for e in LedgerReader(str(path)).validate()
        )

    def test_empty_file_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert LedgerReader(str(path)).validate() != []
        assert validate_ledger_file(str(path)) != []


class TestObsCheckCli:
    """The ``repro obs-check`` gate CI runs against demo ledgers."""

    def _check(self, path, *flags):
        from repro.cli import main

        return main(["obs-check", str(path), *flags])

    def test_healthy_ledger_passes_strict_gate(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=3)
        assert self._check(
            path, "--max-alerts", "0", "--require-rounds", "3"
        ) == 0

    def test_alert_budget_and_round_floor_fail(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=2, alerts=1)
        assert self._check(path, "--max-alerts", "0") == 1
        assert self._check(path, "--require-rounds", "3") == 1
        assert "check failed" in capsys.readouterr().err

    def test_expect_alert_is_repeatable(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _write_run(path, rounds=3, alerts=1)  # theorem1_contraction fires
        assert self._check(path, "--expect-alert", "theorem1_contraction") == 0
        # every expected monitor must fire, not just the last flag
        assert self._check(
            path,
            "--expect-alert", "theorem1_contraction",
            "--expect-alert", "divergence",
        ) == 1
        assert "divergence" in capsys.readouterr().err
