"""Fixtures for the observability suite.

The telemetry facade is a process-global singleton; every test that
enables it must leave it disabled for the rest of the session.  The
autouse fixture enforces that even when a test fails mid-session.
"""

from __future__ import annotations

import pytest

from repro.obs import InMemorySink, telemetry


@pytest.fixture(autouse=True)
def _clean_telemetry():
    assert not telemetry.enabled, "telemetry leaked in from a previous test"
    yield
    if telemetry.enabled:
        telemetry.shutdown()


@pytest.fixture()
def memory_session():
    """An enabled telemetry session backed by one in-memory sink."""
    sink = InMemorySink()
    telemetry.configure([sink])
    yield sink
    if telemetry.enabled:
        telemetry.shutdown()
