"""Interleaving stress: thread-pool rounds must be bit-identical to
sequential under barrier-forced contention, with no shm orphans.

Drives the same entry points as ``python -m tools.racecheck`` (the CI
smoke job); see that module's docstring for the stress design.
"""

import numpy as np
import pytest

from repro.fl.executor import SequentialExecutor
from tools.racecheck import (
    BarrierThreadExecutor,
    audit_shm_leaks,
    build_problem,
    run_once,
    stress_bit_identity,
)

SEED = 7
ROUNDS = 3
DEVICES = 8


@pytest.fixture(scope="module")
def problem():
    return build_problem(DEVICES, SEED)


@pytest.fixture(scope="module")
def reference(problem):
    dataset, model_factory = problem
    return run_once(
        dataset,
        model_factory,
        SequentialExecutor(),
        seed=SEED,
        num_rounds=ROUNDS,
    )


class TestBitIdentityUnderContention:
    # Two worker counts, per the acceptance criteria: a width below the
    # cohort size (real queueing) and one at/above it (full fan-out).
    @pytest.mark.parametrize("workers", [2, 8])
    def test_barrier_stressed_threads_match_sequential(
        self, problem, reference, workers
    ):
        dataset, model_factory = problem
        ref_losses, ref_w = reference
        losses, w = run_once(
            dataset,
            model_factory,
            BarrierThreadExecutor(max_workers=workers),
            seed=SEED,
            num_rounds=ROUNDS,
        )
        assert losses == ref_losses  # exact float equality, not allclose
        assert w.dtype == ref_w.dtype
        np.testing.assert_array_equal(w, ref_w)

    def test_repeated_stress_runs_stay_identical(self):
        failures = stress_bit_identity(
            worker_counts=[3],
            num_devices=DEVICES,
            num_rounds=2,
            repeats=3,
            seed=SEED,
        )
        assert failures == []


class TestShmLeakAudit:
    def test_failure_injected_arena_leaves_no_orphans(self):
        assert audit_shm_leaks(seed=SEED) == []

    def test_audit_reports_deliberate_orphan(self, monkeypatch):
        # The audit must be able to *detect* a leak, not just pass on
        # healthy code: disarm ShmArena.close and expect every injected
        # segment to be reported (then clean them up).
        import tools.racecheck as racecheck
        from repro.backend.shm import ArraySpec, ShmArena, attach_array

        monkeypatch.setattr(ShmArena, "close", lambda self: None)
        orphans = racecheck.audit_shm_leaks(num_segments=2, seed=SEED)
        monkeypatch.undo()
        assert len(orphans) == 2
        for name in orphans:
            _, handle = attach_array(ArraySpec(name, (64,), "<f8"))
            handle.close()
            handle.unlink()
