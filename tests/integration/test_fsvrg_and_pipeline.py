"""Integration: FSVRG vs FedProxVR, dataset round-trip into a run,
and CLI-built configurations end to end."""

import numpy as np
import pytest

from repro.cli import build_dataset, build_model_factory
from repro.fl.fsvrg import run_fsvrg
from repro.datasets import make_synthetic
from repro.datasets.io import load_federated_dataset, save_federated_dataset
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic(
        alpha=1.0, beta=1.0, num_devices=8, num_features=15,
        num_classes=4, min_size=30, max_size=90, seed=2,
    )


@pytest.fixture(scope="module")
def factory(dataset):
    def make():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    return make


class TestFSVRGIntegration:
    def test_fsvrg_competitive_with_fedproxvr(self, dataset, factory):
        cfg = FederatedRunConfig(
            num_rounds=20, num_local_steps=10, beta=5.0, mu=0.1,
            batch_size=16, seed=3, eval_every=5,
        )
        h_vr, _ = run_federated(dataset, factory, cfg)
        h_fsvrg, _ = run_fsvrg(dataset, factory, cfg)
        # both converge to the same ballpark on a convex task
        assert h_fsvrg.final("train_loss") < h_fsvrg.records[0].train_loss
        assert abs(
            h_fsvrg.final("train_loss") - h_vr.final("train_loss")
        ) < 0.5 * h_vr.records[0].train_loss

    def test_fsvrg_mu_ignored(self, dataset, factory):
        """FSVRG has no prox: different mu values give identical runs."""
        base = dict(num_rounds=4, num_local_steps=5, beta=5.0, seed=7)
        _, w_a = run_fsvrg(dataset, factory, FederatedRunConfig(mu=0.0, **base))
        _, w_b = run_fsvrg(dataset, factory, FederatedRunConfig(mu=5.0, **base))
        np.testing.assert_array_equal(w_a, w_b)


class TestDatasetRoundTripPipeline:
    def test_saved_dataset_trains_identically(self, dataset, factory, tmp_path):
        path = save_federated_dataset(dataset, tmp_path / "fed")
        reloaded = load_federated_dataset(path)
        cfg = FederatedRunConfig(num_rounds=5, num_local_steps=4, seed=11)
        _, w_orig = run_federated(dataset, factory, cfg)
        _, w_back = run_federated(reloaded, factory, cfg)
        np.testing.assert_array_equal(w_orig, w_back)


class TestCLIBuiltPipeline:
    def test_digits_mlp_pipeline(self):
        ds = build_dataset("digits", num_devices=3, num_samples=120, seed=0)
        factory = build_model_factory("mlp", ds)
        cfg = FederatedRunConfig(
            num_rounds=4, num_local_steps=3, batch_size=8, seed=0, eval_every=2
        )
        history, _ = run_federated(ds, factory, cfg)
        assert np.isfinite(history.final("train_loss"))

    def test_fashion_cnn_pipeline(self):
        ds = build_dataset("fashion", num_devices=2, num_samples=60, seed=0)
        factory = build_model_factory("cnn", ds)
        model = factory()
        w = model.init_parameters(0)
        dev = ds.devices[0]
        loss, grad = model.loss_and_gradient(w, dev.X_train, dev.y_train)
        assert np.isfinite(loss)
        assert grad.shape == w.shape
