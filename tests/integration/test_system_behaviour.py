"""Integration tests: reproducibility, simulated time, failure injection."""

import numpy as np
import pytest

from repro.core.local import FedAvgLocalSolver
from repro.datasets import make_synthetic
from repro.fl.aggregation import coordinate_median, weighted_average
from repro.fl.client import Client
from repro.fl.delays import make_heterogeneous_delays, make_uniform_delays
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.fl.server import FederatedServer
from repro.models import MultinomialLogisticModel


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic(
        alpha=1.0, beta=1.0, num_devices=8, num_features=15,
        num_classes=4, min_size=30, max_size=90, seed=5,
    )


@pytest.fixture(scope="module")
def factory(dataset):
    def make():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    return make


class TestReproducibility:
    def test_bitwise_identical_runs(self, dataset, factory):
        cfg = FederatedRunConfig(num_rounds=6, num_local_steps=4, seed=9)
        _, w1 = run_federated(dataset, factory, cfg)
        _, w2 = run_federated(dataset, factory, cfg)
        np.testing.assert_array_equal(w1, w2)

    def test_client_order_invariance(self, dataset, factory):
        """Reversing client iteration order must not change the result:
        per-(client, round) RNG streams are order-independent."""
        model = factory()
        solver = FedAvgLocalSolver(step_size=0.02, num_steps=4, batch_size=8)
        clients = [
            Client(d.device_id, d, model, solver, base_seed=1)
            for d in dataset.devices
        ]
        w0 = model.init_parameters(0)

        results_fwd = [c.local_update(w0, 1) for c in clients]
        results_rev = [c.local_update(w0, 1) for c in reversed(clients)]
        for r_f, r_r in zip(results_fwd, reversed(results_rev)):
            np.testing.assert_array_equal(r_f.w_local, r_r.w_local)


class TestSimulatedTime:
    def test_straggler_dominates_round_time(self, dataset, factory):
        """With heterogeneous delays, the synchronous round costs the
        slowest participant."""
        model = factory()
        solver = FedAvgLocalSolver(step_size=0.02, num_steps=4, batch_size=8)
        clients = [
            Client(d.device_id, d, model, solver, base_seed=0)
            for d in dataset.devices
        ]
        delays = make_heterogeneous_delays(
            dataset.num_devices, d_cmp_mean=0.01, d_com_mean=1.0, spread=1.0, seed=3
        )
        server = FederatedServer(clients, model, delay_model=delays)
        server.run_round(model.init_parameters(0), 1)
        slowest = max(d.round_delay(5) for d in delays.delays)
        assert server.clock.round_durations[0] == pytest.approx(slowest)

    def test_more_local_steps_cost_more_sim_time(self, dataset, factory):
        def sim_time(tau):
            cfg = FederatedRunConfig(
                algorithm="fedavg", num_rounds=3, num_local_steps=tau, seed=0,
                delay_model=make_uniform_delays(dataset.num_devices, d_cmp=0.1, d_com=1.0),
            )
            history, _ = run_federated(dataset, factory, cfg)
            return history.final("sim_time")

        assert sim_time(20) > sim_time(2)


class TestFailureInjection:
    def test_byzantine_client_breaks_mean_not_median(self, dataset, factory):
        """One poisoned local model wrecks the weighted average but the
        coordinate median survives — the aggregation seam works."""
        model = factory()
        solver = FedAvgLocalSolver(step_size=0.02, num_steps=4, batch_size=8)
        clients = [
            Client(d.device_id, d, model, solver, base_seed=0)
            for d in dataset.devices
        ]
        w0 = model.init_parameters(0)
        results = [c.local_update(w0, 1) for c in clients]
        locals_ = [r.w_local for r in results]
        locals_[0] = np.full_like(locals_[0], 1e9)  # poison one device

        poisoned_mean = weighted_average(locals_)
        poisoned_median = coordinate_median(locals_)
        honest_median = coordinate_median([r.w_local for r in results])

        assert np.max(np.abs(poisoned_mean)) > 1e6
        assert np.max(np.abs(poisoned_median - honest_median)) < 1.0

    def test_single_device_federation(self, factory):
        ds = make_synthetic(
            alpha=0.5, beta=0.5, num_devices=1, num_features=15,
            num_classes=4, min_size=50, max_size=60, seed=6,
        )
        cfg = FederatedRunConfig(num_rounds=5, num_local_steps=5, seed=0)
        history, _ = run_federated(ds, factory, cfg)
        assert history.final("train_loss") < history.records[0].train_loss

    def test_tiny_batch_size(self, dataset, factory):
        cfg = FederatedRunConfig(
            num_rounds=4, num_local_steps=4, batch_size=1, seed=0
        )
        history, _ = run_federated(dataset, factory, cfg)
        assert np.isfinite(history.final("train_loss"))

    def test_partial_participation(self, dataset, factory):
        cfg = FederatedRunConfig(
            num_rounds=10, num_local_steps=5, client_fraction=0.5, seed=0
        )
        history, _ = run_federated(dataset, factory, cfg)
        assert history.final("train_loss") < history.records[0].train_loss
