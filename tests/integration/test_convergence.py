"""Integration tests: end-to-end convergence claims of the paper.

These run real (small) federated experiments and assert the *shape*
results: everything converges on feasible parameters, FedProxVR matches
or beats FedAvg at matched hyperparameters, the mu knob stabilizes
aggressive steps, and the theta criterion is met under Lemma-1-style
configurations.
"""

import numpy as np
import pytest

from repro.core.local import FedProxVRLocalSolver
from repro.datasets import make_synthetic
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel, make_mlp_model


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic(
        alpha=1.0, beta=1.0, num_devices=10, num_features=20,
        num_classes=5, min_size=40, max_size=150, seed=0,
    )


@pytest.fixture(scope="module")
def factory(dataset):
    def make():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    return make


def run(dataset, factory, algorithm, mu, rounds=25, tau=10, beta=5.0, seed=3, **kw):
    cfg = FederatedRunConfig(
        algorithm=algorithm,
        num_rounds=rounds,
        num_local_steps=tau,
        beta=beta,
        mu=mu,
        batch_size=16,
        seed=seed,
        eval_every=5,
        **kw,
    )
    return run_federated(dataset, factory, cfg)


class TestConvexConvergence:
    @pytest.mark.parametrize(
        "algorithm,mu",
        [
            ("fedavg", 0.0),
            ("fedprox", 0.1),
            ("fedproxvr-svrg", 0.1),
            ("fedproxvr-sarah", 0.1),
            ("gd", 0.1),
        ],
    )
    def test_all_algorithms_reduce_loss(self, dataset, factory, algorithm, mu):
        history, _ = run(dataset, factory, algorithm, mu)
        first, last = history.records[0].train_loss, history.final("train_loss")
        assert np.isfinite(last)
        assert last < first

    def test_fedproxvr_at_least_matches_fedavg(self, dataset, factory):
        """The paper's headline: at matched (beta, tau, B), FedProxVR
        converges at least as fast as FedAvg (Figs. 2-3)."""
        h_avg, _ = run(dataset, factory, "fedavg", 0.0, rounds=40, tau=20)
        h_vr, _ = run(dataset, factory, "fedproxvr-sarah", 0.1, rounds=40, tau=20)
        assert h_vr.final("train_loss") <= h_avg.final("train_loss") * 1.02

    def test_grad_norm_decreases(self, dataset, factory):
        history, _ = run(dataset, factory, "fedproxvr-svrg", 0.1, rounds=40, tau=20)
        norms = history.series("grad_norm")
        assert norms[-1] < norms[0]


class TestNonConvexConvergence:
    def test_mlp_trains(self, dataset):
        def factory():
            return make_mlp_model(dataset.num_features, dataset.num_classes, (16,), seed=0)

        history, _ = run(dataset, factory, "fedproxvr-sarah", 0.01, rounds=15, tau=8)
        assert history.final("train_loss") < history.records[0].train_loss
        assert history.final("test_accuracy") > 1.0 / dataset.num_classes


class TestMuStabilization:
    """Fig. 4's phenomenon, asserted."""

    @pytest.fixture(scope="class")
    def harsh(self):
        return make_synthetic(
            alpha=3.0, beta=3.0, num_devices=15, num_features=30,
            num_classes=5, min_size=40, max_size=120, seed=1,
        )

    def _final_loss(self, harsh, mu):
        def factory():
            return MultinomialLogisticModel(harsh.num_features, harsh.num_classes)

        cfg = FederatedRunConfig(
            algorithm="fedproxvr-svrg",
            num_rounds=25,
            num_local_steps=30,
            beta=0.5,
            smoothness=1.0,  # deliberate under-estimate -> aggressive eta
            mu=mu,
            batch_size=16,
            seed=2,
            eval_every=5,
        )
        history, _ = run_federated(harsh, factory, cfg)
        return history.final("train_loss"), history

    def test_mu_zero_unstable_mu_positive_stable(self, harsh):
        loss_zero, _ = self._final_loss(harsh, 0.0)
        loss_prox, _ = self._final_loss(harsh, 5.0)
        # mu = 0 ends far above the proximal run (often > initial loss)
        assert loss_prox < loss_zero * 0.7

    def test_large_mu_slower_in_stable_regime(self, dataset, factory):
        h_small, _ = run(dataset, factory, "fedproxvr-svrg", 0.1, rounds=25, tau=15)
        h_large, _ = run(dataset, factory, "fedproxvr-svrg", 50.0, rounds=25, tau=15)
        assert h_large.final("train_loss") > h_small.final("train_loss")


class TestLocalAccuracyCriterion:
    def test_achieved_theta_improves_with_more_steps(self, dataset):
        """More local iterations -> smaller ||grad J_n|| / ||grad F_n||,
        the empirical face of Lemma 1's tau lower bound."""
        model = MultinomialLogisticModel(dataset.num_features, dataset.num_classes)
        dev = dataset.devices[0]
        X, y = dev.X_train, dev.y_train
        L = model.smoothness(X)
        w0 = model.init_parameters(0)
        ratios = []
        for tau in (2, 20, 200):
            solver = FedProxVRLocalSolver(
                step_size=1.0 / (5 * L),
                num_steps=tau,
                batch_size=16,
                mu=0.5,
                estimator="sarah",
                iterate_selection="last",
            )
            result = solver.solve(model, X, y, w0, np.random.default_rng(5))
            ratios.append(result.achieved_accuracy)
        assert ratios[2] < ratios[0]

    def test_random_iterate_selection_converges(self, dataset, factory):
        """Alg. 1's literal line 10 (random t') also converges, just
        more slowly than the last iterate."""
        history, _ = run(
            dataset, factory, "fedproxvr-sarah", 0.1, rounds=30, tau=10,
            solver_kwargs={"iterate_selection": "random"},
        )
        assert history.final("train_loss") < history.records[0].train_loss
