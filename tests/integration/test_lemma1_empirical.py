"""Empirical validation of Lemma 1's prescription.

Choose ``(beta, tau)`` exactly as Remark 1(3) prescribes for a target
local accuracy ``theta``, run the actual FedProxVR inner loop on a
convex device problem with *known* constants, and verify the achieved
criterion (11): ``||grad J_n(w_out)|| <= theta ||grad F_n(w_bar)||``.

This closes the loop between `repro.core.theory` and
`repro.core.local.proxvr` — the theory's sufficient conditions must be
sufficient in practice (they are worst-case, so the margin is large).
"""

import numpy as np
import pytest

from repro.core import theory
from repro.core.local import FedProxVRLocalSolver
from repro.core.theory import ProblemConstants
from repro.models import MultinomialLogisticModel


@pytest.fixture(scope="module")
def device_problem():
    rng = np.random.default_rng(0)
    model = MultinomialLogisticModel(10, 4, fit_intercept=False)
    X = rng.standard_normal((80, 10))
    y = rng.integers(0, 4, 80)
    L = model.smoothness(X)
    w_bar = model.init_parameters(1) * 5.0  # start away from optimum
    return model, X, y, L, w_bar


class TestLemma1Empirically:
    @pytest.mark.parametrize("estimator", ["sarah", "svrg"])
    def test_prescribed_beta_tau_achieves_theta(self, device_problem, estimator):
        model, X, y, L, w_bar = device_problem
        theta, mu = 0.5, 1.0
        # Convex problem: lambda ~ 0; floor it to keep mu~ < mu meaningful.
        constants = ProblemConstants(L=L, lam=1e-3, sigma_bar_sq=0.0)
        beta = theory.beta_min(theta, mu, constants, estimator="sarah")
        tau = int(np.ceil(theory.tau_star_sarah(beta)))

        solver = FedProxVRLocalSolver(
            step_size=1.0 / (beta * L),
            num_steps=tau,
            batch_size=16,
            mu=mu,
            estimator=estimator,
            iterate_selection="last",
        )
        result = solver.solve(model, X, y, w_bar, np.random.default_rng(2))
        assert result.achieved_accuracy is not None
        assert result.achieved_accuracy <= theta, (
            f"Lemma 1 prescription failed: achieved "
            f"{result.achieved_accuracy:.4f} > theta={theta}"
        )

    def test_far_fewer_steps_miss_theta(self, device_problem):
        """The converse direction (sanity, not a theorem): with a tiny
        fraction of the prescribed tau at the same step size, the
        criterion is not yet met — tau genuinely binds."""
        model, X, y, L, w_bar = device_problem
        theta, mu = 0.2, 1.0
        constants = ProblemConstants(L=L, lam=1e-3, sigma_bar_sq=0.0)
        beta = theory.beta_min(theta, mu, constants)
        solver = FedProxVRLocalSolver(
            step_size=1.0 / (beta * L),
            num_steps=2,  # vs the prescribed hundreds
            batch_size=16,
            mu=mu,
            estimator="sarah",
            iterate_selection="last",
        )
        result = solver.solve(model, X, y, w_bar, np.random.default_rng(3))
        assert result.achieved_accuracy > theta

    def test_theta_stopping_matches_prescription(self, device_problem):
        """Criterion-(11) early stopping reaches theta well before the
        worst-case tau — quantifying the slack in Lemma 1."""
        model, X, y, L, w_bar = device_problem
        theta, mu = 0.5, 1.0
        constants = ProblemConstants(L=L, lam=1e-3, sigma_bar_sq=0.0)
        beta = theory.beta_min(theta, mu, constants)
        tau = int(np.ceil(theory.tau_star_sarah(beta)))
        solver = FedProxVRLocalSolver(
            step_size=1.0 / (beta * L),
            num_steps=tau,
            batch_size=16,
            mu=mu,
            estimator="sarah",
            theta=theta,
            check_interval=5,
            iterate_selection="last",
        )
        result = solver.solve(model, X, y, w_bar, np.random.default_rng(4))
        assert result.diagnostics["stopped_early"] == 1.0
        assert result.num_steps < tau
