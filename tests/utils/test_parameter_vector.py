"""Tests for repro.utils.parameter_vector."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.utils.parameter_vector import (
    ParameterSpec,
    flatten_arrays,
    unflatten_vector,
)


class TestFlattenArrays:
    def test_empty_gives_empty_vector(self):
        out = flatten_arrays([])
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_concatenation_order(self):
        a = np.arange(4).reshape(2, 2)
        b = np.array([10.0, 11.0])
        out = flatten_arrays([a, b])
        np.testing.assert_array_equal(out, [0, 1, 2, 3, 10, 11])

    def test_casts_to_float64(self):
        out = flatten_arrays([np.array([1, 2], dtype=np.int32)])
        assert out.dtype == np.float64


class TestUnflattenVector:
    def test_roundtrip(self):
        shapes = [(3, 2), (5,), (1, 1, 4)]
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(s) for s in shapes]
        vec = flatten_arrays(arrays)
        back = unflatten_vector(vec, shapes)
        for orig, rec in zip(arrays, back):
            np.testing.assert_allclose(orig, rec)

    def test_views_alias_vector(self):
        vec = np.zeros(6)
        pieces = unflatten_vector(vec, [(2, 2), (2,)])
        pieces[0][0, 0] = 5.0
        assert vec[0] == 5.0

    def test_wrong_size_raises(self):
        with pytest.raises(DimensionMismatchError):
            unflatten_vector(np.zeros(5), [(2, 2), (2,)])

    def test_wrong_ndim_raises(self):
        with pytest.raises(DimensionMismatchError):
            unflatten_vector(np.zeros((3, 2)), [(6,)])


class TestParameterSpec:
    def test_size_and_offsets(self):
        spec = ParameterSpec([(2, 3), (3,), (4, 1)])
        assert spec.size == 6 + 3 + 4
        assert spec.offsets == [0, 6, 9]

    def test_flatten_validates_shapes(self):
        spec = ParameterSpec([(2, 2)])
        with pytest.raises(DimensionMismatchError):
            spec.flatten([np.zeros((3, 2))])

    def test_flatten_validates_count(self):
        spec = ParameterSpec([(2, 2), (2,)])
        with pytest.raises(DimensionMismatchError):
            spec.flatten([np.zeros((2, 2))])

    def test_roundtrip(self):
        spec = ParameterSpec([(2, 3), (4,)])
        rng = np.random.default_rng(1)
        arrays = [rng.standard_normal(s) for s in spec.shapes]
        back = spec.unflatten(spec.flatten(arrays))
        for orig, rec in zip(arrays, back):
            np.testing.assert_allclose(orig, rec)

    def test_zeros(self):
        spec = ParameterSpec([(3,), (2, 2)])
        z = spec.zeros()
        assert z.shape == (7,)
        assert not z.any()

    def test_piece_views(self):
        spec = ParameterSpec([(2,), (3,)])
        vec = np.arange(5, dtype=np.float64)
        np.testing.assert_array_equal(spec.piece(vec, 0), [0, 1])
        np.testing.assert_array_equal(spec.piece(vec, 1), [2, 3, 4])

    def test_piece_out_of_range(self):
        spec = ParameterSpec([(2,)])
        with pytest.raises(IndexError):
            spec.piece(np.zeros(2), 1)

    def test_scalar_shapes(self):
        spec = ParameterSpec([(), (2,)])
        assert spec.size == 3
        vec = np.array([7.0, 1.0, 2.0])
        assert spec.piece(vec, 0).shape == ()
        assert float(spec.piece(vec, 0)) == 7.0
