"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import SimulatedClock, WallClockTimer


class TestSimulatedClock:
    def test_round_takes_max_client_delay(self):
        clock = SimulatedClock()
        duration = clock.advance_round([1.0, 5.0, 2.0])
        assert duration == 5.0
        assert clock.elapsed == 5.0

    def test_server_delay_added(self):
        clock = SimulatedClock()
        clock.advance_round([2.0], server_delay=0.5)
        assert clock.elapsed == 2.5

    def test_accumulates_rounds(self):
        clock = SimulatedClock()
        clock.advance_round([1.0])
        clock.advance_round([3.0])
        assert clock.elapsed == 4.0
        assert clock.round_durations == [1.0, 3.0]

    def test_empty_round_costs_zero(self):
        clock = SimulatedClock()
        assert clock.advance_round([]) == 0.0

    def test_negative_delay_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance_round([-1.0])
        with pytest.raises(ValueError):
            clock.advance_round([1.0], server_delay=-0.1)

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance_round([2.0])
        clock.reset()
        assert clock.elapsed == 0.0
        assert clock.round_durations == []

    def test_reset_clears_round_durations_regression(self):
        # regression guard: a reset clock must not leak old durations
        # into snapshot()'s num_rounds / last_duration
        clock = SimulatedClock()
        clock.advance_round([1.0])
        clock.advance_round([2.0])
        clock.reset()
        assert clock.snapshot() == (0.0, 0, 0.0)
        clock.advance_round([3.0])
        assert clock.round_durations == [3.0]

    def test_snapshot(self):
        clock = SimulatedClock()
        assert clock.snapshot() == (0.0, 0, 0.0)
        clock.advance_round([1.5])
        clock.advance_round([0.5], server_delay=0.25)
        elapsed, num_rounds, last = clock.snapshot()
        assert elapsed == 2.25
        assert num_rounds == 2
        assert last == 0.75

    def test_snapshot_is_read_only(self):
        clock = SimulatedClock()
        clock.advance_round([1.0])
        before = list(clock.round_durations)
        clock.snapshot()
        assert clock.round_durations == before


class TestWallClockTimer:
    def test_records_laps(self):
        timer = WallClockTimer()
        with timer.lap("a"):
            pass
        with timer.lap("b"):
            pass
        assert set(timer.laps) == {"a", "b"}
        assert all(v >= 0.0 for v in timer.laps.values())

    def test_laps_accumulate(self):
        timer = WallClockTimer()
        with timer.lap("x"):
            pass
        first = timer.laps["x"]
        with timer.lap("x"):
            pass
        assert timer.laps["x"] >= first

    def test_total_is_sum(self):
        timer = WallClockTimer()
        with timer.lap("a"):
            pass
        with timer.lap("b"):
            pass
        assert timer.total == pytest.approx(sum(timer.laps.values()))

    def test_unlabeled_block(self):
        timer = WallClockTimer()
        with timer:
            pass
        assert "unlabeled" in timer.laps

    def test_summary_mentions_labels(self):
        timer = WallClockTimer()
        with timer.lap("phase-one"):
            pass
        assert "phase-one" in timer.summary()
