"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.utils.validation import (
    check_array_2d,
    check_choice,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
    check_same_length,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0, strict=False)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("nan"))
        with pytest.raises(ConfigurationError):
            check_positive("x", float("inf"))

    def test_message_names_argument(self):
        with pytest.raises(ConfigurationError, match="learning_rate"):
            check_positive("learning_rate", -3)

    def test_rejects_negative_infinity(self):
        # -inf fails the finiteness check, not the sign check, and in
        # either mode.
        for strict in (True, False):
            with pytest.raises(ConfigurationError, match="finite"):
                check_positive("x", float("-inf"), strict=strict)

    def test_rejects_nonfinite_even_when_not_strict(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("nan"), strict=False)
        with pytest.raises(ConfigurationError):
            check_positive("x", float("inf"), strict=False)

    def test_boundary_smallest_positive(self):
        tiny = np.nextafter(0.0, 1.0)  # smallest positive subnormal
        assert check_positive("x", tiny) == tiny
        with pytest.raises(ConfigurationError):
            check_positive("x", -tiny, strict=False)

    def test_returns_float_coercion(self):
        out = check_positive("x", 3)
        assert isinstance(out, float) and out == 3.0


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, v):
        assert check_probability("p", v) == v

    @pytest.mark.parametrize("v", [-0.01, 1.01])
    def test_rejects_outside(self, v):
        with pytest.raises(ConfigurationError):
            check_probability("p", v)

    @pytest.mark.parametrize(
        "v", [float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_nonfinite(self, v):
        # nan fails both interval comparisons; the infinities fall
        # outside [0, 1].  All must raise, never propagate.
        with pytest.raises(ConfigurationError, match="p"):
            check_probability("p", v)

    def test_boundary_neighbours(self):
        # The closest representable values outside [0, 1] are rejected,
        # the closest inside are accepted.
        assert check_probability("p", np.nextafter(0.0, 1.0)) > 0.0
        assert check_probability("p", np.nextafter(1.0, 0.0)) < 1.0
        with pytest.raises(ConfigurationError):
            check_probability("p", np.nextafter(0.0, -1.0))
        with pytest.raises(ConfigurationError):
            check_probability("p", np.nextafter(1.0, 2.0))


class TestCheckInRange:
    def test_inclusive_both(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_neither(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive="neither")

    def test_left_only(self):
        assert check_in_range("x", 1.0, 1.0, 2.0, inclusive="left") == 1.0
        with pytest.raises(ConfigurationError):
            check_in_range("x", 2.0, 1.0, 2.0, inclusive="left")

    def test_right_only(self):
        assert check_in_range("x", 2.0, 1.0, 2.0, inclusive="right") == 2.0
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive="right")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("n", 3) == 3

    def test_rejects_fractional(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", 2.5)

    def test_accepts_integral_float(self):
        assert check_positive_int("n", 4.0) == 4

    def test_minimum(self):
        assert check_positive_int("n", 0, minimum=0) == 0
        with pytest.raises(ConfigurationError):
            check_positive_int("n", 0, minimum=1)


class TestArrayChecks:
    def test_check_array_2d_accepts(self):
        out = check_array_2d("X", [[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_check_array_2d_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            check_array_2d("X", [1, 2, 3])

    def test_check_same_length(self):
        check_same_length("a", [1, 2], "b", [3, 4])
        with pytest.raises(DimensionMismatchError):
            check_same_length("a", [1], "b", [3, 4])


class TestCheckChoice:
    def test_accepts_member(self):
        assert check_choice("mode", "fast", ["fast", "slow"]) == "fast"

    def test_rejects_nonmember(self):
        with pytest.raises(ConfigurationError, match="mode"):
            check_choice("mode", "medium", ["fast", "slow"])
