"""Tests for repro.utils.smoothness."""

import numpy as np
import pytest

from repro.models import LinearRegressionModel, MultinomialLogisticModel
from repro.utils.smoothness import (
    estimate_lower_curvature,
    estimate_smoothness_power_iteration,
    least_squares_smoothness,
    logistic_smoothness,
    suggest_step_size,
)


class TestAnalyticSmoothness:
    def test_least_squares_is_max_row_norm_sq(self):
        X = np.array([[3.0, 4.0], [1.0, 0.0]])
        assert least_squares_smoothness(X) == pytest.approx(25.0)

    def test_least_squares_empty(self):
        assert least_squares_smoothness(np.zeros((0, 3))) == 0.0

    def test_logistic_binary_quarter(self):
        X = np.array([[2.0, 0.0]])
        assert logistic_smoothness(X, num_classes=2) == pytest.approx(1.0)

    def test_logistic_multiclass_half(self):
        X = np.array([[2.0, 0.0]])
        assert logistic_smoothness(X, num_classes=5) == pytest.approx(2.0)


class TestPowerIteration:
    def test_quadratic_recovers_top_eigenvalue(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((6, 6))
        H = A @ A.T  # PSD with known spectrum
        top = np.linalg.eigvalsh(H)[-1]

        est = estimate_smoothness_power_iteration(
            lambda w: H @ w, np.zeros(6), num_iterations=200, seed=1
        )
        assert est == pytest.approx(top, rel=1e-2)

    def test_least_squares_model_matches_hessian(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((40, 5))
        y = rng.standard_normal(40)
        model = LinearRegressionModel(5, fit_intercept=False)
        H = X.T @ X / X.shape[0]
        top = np.linalg.eigvalsh(H)[-1]
        est = estimate_smoothness_power_iteration(
            lambda w: model.gradient(w, X, y),
            np.zeros(5),
            num_iterations=100,
            seed=2,
        )
        assert est == pytest.approx(top, rel=1e-2)

    def test_zero_hessian_returns_zero(self):
        est = estimate_smoothness_power_iteration(
            lambda w: np.zeros_like(w), np.zeros(4), seed=0
        )
        assert est == pytest.approx(0.0, abs=1e-8)

    def test_analytic_dominates_power_estimate_for_logistic(self):
        # Analytic L is a worst-case bound; the local Hessian estimate
        # must not exceed it (sanity linking both code paths).
        rng = np.random.default_rng(3)
        X = rng.standard_normal((30, 4))
        y = rng.integers(0, 3, 30)
        model = MultinomialLogisticModel(4, 3, fit_intercept=False)
        w0 = model.init_parameters(0)
        est = estimate_smoothness_power_iteration(
            lambda w: model.gradient(w, X, y), w0, num_iterations=80, seed=4
        )
        assert est <= model.smoothness(X) + 1e-6


class TestLowerCurvature:
    def test_convex_model_has_near_zero(self):
        rng = np.random.default_rng(5)
        X = rng.standard_normal((30, 4))
        y = rng.standard_normal(30)
        model = LinearRegressionModel(4, fit_intercept=False)
        lam = estimate_lower_curvature(
            lambda w: model.gradient(w, X, y), np.zeros(4), seed=6
        )
        assert lam == pytest.approx(0.0, abs=1e-6)

    def test_concave_direction_detected(self):
        H = np.diag([1.0, -2.0, 3.0])
        lam = estimate_lower_curvature(
            lambda w: H @ w, np.zeros(3), num_probes=64, seed=7
        )
        assert 0.0 < lam <= 2.0 + 1e-6


class TestStepSize:
    def test_formula(self):
        assert suggest_step_size(2.0, 5.0) == pytest.approx(0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(Exception):
            suggest_step_size(0.0, 5.0)
