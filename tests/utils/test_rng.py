"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    derive_generator,
    spawn_generators,
    spawn_seeds,
)


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(42).standard_normal(5)
        b = as_generator(42).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_from_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss)
        assert isinstance(a, np.random.Generator)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_zero_is_allowed(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_children_independent_streams(self):
        gens = spawn_generators(0, 3)
        draws = [g.standard_normal(10) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic_across_calls(self):
        a = [g.standard_normal(4) for g in spawn_generators(9, 3)]
        b = [g.standard_normal(4) for g in spawn_generators(9, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator_consumes_entropy(self):
        g = np.random.default_rng(3)
        first = spawn_seeds(g, 2)
        second = spawn_seeds(g, 2)
        a = np.random.default_rng(first[0]).standard_normal(4)
        b = np.random.default_rng(second[0]).standard_normal(4)
        assert not np.allclose(a, b)

    def test_children_have_distinct_spawn_keys(self):
        # SeedSequence independence comes from distinct spawn keys under
        # a shared entropy pool — verify the mechanism, not just the
        # output streams.
        seeds = spawn_seeds(123, 8)
        keys = [s.spawn_key for s in seeds]
        assert len(set(keys)) == len(keys)
        assert all(s.entropy == seeds[0].entropy for s in seeds)

    def test_child_streams_statistically_uncorrelated(self):
        # Pairwise Pearson correlation of long standard-normal draws
        # from sibling streams should be ~N(0, 1/sqrt(n)); with
        # n = 4000 a |r| above 0.08 (~5 sigma) indicates coupling.
        n = 4000
        draws = [g.standard_normal(n) for g in spawn_generators(2024, 6)]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                r = np.corrcoef(draws[i], draws[j])[0, 1]
                assert abs(r) < 0.08, (i, j, r)

    def test_children_differ_from_parent_stream(self):
        # A generator seeded directly on the parent sequence must not
        # replay any child's stream.
        parent_draw = as_generator(np.random.SeedSequence(77)).standard_normal(64)
        for child in spawn_generators(77, 4):
            assert not np.allclose(parent_draw, child.standard_normal(64))


class TestDeriveGenerator:
    def test_keyed_determinism(self):
        a = derive_generator(0, 3, 7).standard_normal(6)
        b = derive_generator(0, 3, 7).standard_normal(6)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = derive_generator(0, 3, 7).standard_normal(6)
        b = derive_generator(0, 3, 8).standard_normal(6)
        c = derive_generator(0, 4, 7).standard_normal(6)
        assert not np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_order_independence(self):
        # Deriving (1,2) after (5,6) equals deriving it first.
        _ = derive_generator(0, 5, 6).standard_normal(2)
        a = derive_generator(0, 1, 2).standard_normal(4)
        b = derive_generator(0, 1, 2).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_live_generator_rejected(self):
        with pytest.raises(TypeError):
            derive_generator(np.random.default_rng(0), 1)

    def test_seed_sequence_base(self):
        ss = np.random.SeedSequence(11)
        a = derive_generator(ss, 2).standard_normal(3)
        b = derive_generator(11, 2).standard_normal(3)
        np.testing.assert_array_equal(a, b)
