"""Cross-executor equivalence: every executor, same bits.

The batched cohort path reorders *scheduling*, never arithmetic; the
thread and process pools reorder *completion*, never RNG streams.  The
contract — asserted here with exact equality, not tolerances — is that
``sequential``, ``batched``, ``thread`` and ``process`` produce
bit-identical :class:`LocalSolveResult`s, round histories, and final
models on fixed seeds.
"""

import numpy as np
import pytest

from repro.core.local import FedProxVRLocalSolver
from repro.datasets import make_synthetic
from repro.fl.client import Client
from repro.fl.executor import BatchedCohortExecutor, SequentialExecutor
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel, make_paper_cnn_model

EXECUTORS = ("sequential", "batched", "thread", "process")


@pytest.fixture(scope="module")
def fig2_dataset():
    """A small heterogeneous MLR federation in the Fig. 2 mould."""
    return make_synthetic(
        alpha=1.0,
        beta=1.0,
        num_devices=8,
        num_features=10,
        num_classes=5,
        min_size=25,
        max_size=90,
        seed=11,
    )


def _mlr_factory(dataset):
    return lambda: MultinomialLogisticModel(
        dataset.num_features, dataset.num_classes, l2=1e-4
    )


def _run_all(dataset, factory, **config_kwargs):
    outcomes = {}
    for executor in EXECUTORS:
        history, w = run_federated(
            dataset,
            factory,
            FederatedRunConfig(executor=executor, **config_kwargs),
        )
        outcomes[executor] = (history, w)
    return outcomes


def _assert_identical(outcomes):
    ref_history, ref_w = outcomes["sequential"]
    for executor, (history, w) in outcomes.items():
        np.testing.assert_array_equal(
            w, ref_w, err_msg=f"{executor} final model differs from sequential"
        )
        for rec, ref in zip(history.records, ref_history.records):
            assert rec.train_loss == ref.train_loss, executor
            assert rec.test_accuracy == ref.test_accuracy, executor
            assert rec.mean_gradient_evaluations == ref.mean_gradient_evaluations, executor


class TestConvexEquivalence:
    """The paper's convex MLR setting across all four executors."""

    @pytest.mark.parametrize(
        "algorithm", ["fedavg", "fedprox", "fedproxvr-svrg", "fedproxvr-sarah"]
    )
    def test_algorithms_bit_identical(self, fig2_dataset, algorithm):
        outcomes = _run_all(
            fig2_dataset,
            _mlr_factory(fig2_dataset),
            algorithm=algorithm,
            num_rounds=3,
            num_local_steps=4,
            batch_size=16,
            seed=3,
        )
        _assert_identical(outcomes)

    def test_random_iterate_selection_bit_identical(self, fig2_dataset):
        """Line 10's random draw must consume each client's own stream
        identically under every executor."""
        outcomes = _run_all(
            fig2_dataset,
            _mlr_factory(fig2_dataset),
            algorithm="fedproxvr-sarah",
            num_rounds=3,
            num_local_steps=4,
            batch_size=16,
            seed=9,
            solver_kwargs={"iterate_selection": "random"},
        )
        _assert_identical(outcomes)

    def test_average_iterate_selection_bit_identical(self, fig2_dataset):
        outcomes = _run_all(
            fig2_dataset,
            _mlr_factory(fig2_dataset),
            algorithm="fedproxvr-svrg",
            num_rounds=2,
            num_local_steps=3,
            batch_size=16,
            seed=4,
            solver_kwargs={"iterate_selection": "average"},
        )
        _assert_identical(outcomes)

    def test_partial_participation_bit_identical(self, fig2_dataset):
        outcomes = _run_all(
            fig2_dataset,
            _mlr_factory(fig2_dataset),
            algorithm="fedproxvr-svrg",
            num_rounds=3,
            num_local_steps=3,
            batch_size=16,
            seed=6,
            client_fraction=0.5,
        )
        _assert_identical(outcomes)


class TestNonConvexEquivalence:
    """The paper's CNN has no batch kernel: the batched executor must
    transparently fall back and still match sequential exactly."""

    def test_cnn_bit_identical(self):
        dataset = make_synthetic(
            num_devices=3,
            num_features=64,
            num_classes=3,
            min_size=12,
            max_size=20,
            seed=2,
        )
        factory = lambda: make_paper_cnn_model(
            (1, 8, 8), 3, channel_scale=0.1, seed=0
        )
        outcomes = _run_all(
            dataset,
            factory,
            algorithm="fedproxvr-sarah",
            num_rounds=2,
            num_local_steps=2,
            batch_size=8,
            seed=1,
            smoothness=50.0,  # skip the power-iteration probe
        )
        _assert_identical(outcomes)


class TestBatchedExecutorResults:
    """Field-level equality of LocalSolveResults, executor-to-executor."""

    def _make_clients(self, dataset, solver):
        model = MultinomialLogisticModel(
            dataset.num_features, dataset.num_classes, l2=1e-4
        )
        return [
            Client(dev.device_id, dev, model, solver, base_seed=13)
            for dev in dataset.devices
        ], model

    def test_results_fieldwise_identical(self, fig2_dataset):
        solver = FedProxVRLocalSolver(
            step_size=0.05, num_steps=5, batch_size=16, mu=0.1,
            estimator="svrg", iterate_selection="random",
        )
        clients, model = self._make_clients(fig2_dataset, solver)
        w0 = model.init_parameters(0)
        seq = SequentialExecutor().run_round(clients, w0, 4)
        bat = BatchedCohortExecutor().run_round(clients, w0, 4)
        for rs, rb in zip(seq, bat):
            np.testing.assert_array_equal(rs.w_local, rb.w_local)
            assert rs.num_steps == rb.num_steps
            assert rs.num_gradient_evaluations == rb.num_gradient_evaluations
            assert rs.start_grad_norm == rb.start_grad_norm
            assert rs.final_surrogate_grad_norm == rb.final_surrogate_grad_norm
            assert rs.diagnostics == rb.diagnostics

    def test_theta_stopping_falls_back_identically(self, fig2_dataset):
        """Data-dependent early stopping has no batched path; the
        executor's per-client fallback must still match sequential."""
        solver = FedProxVRLocalSolver(
            step_size=0.05, num_steps=20, batch_size=16, mu=0.1,
            estimator="sarah", theta=0.9, check_interval=5,
        )
        clients, model = self._make_clients(fig2_dataset, solver)
        w0 = model.init_parameters(0)
        seq = SequentialExecutor().run_round(clients, w0, 1)
        bat = BatchedCohortExecutor().run_round(clients, w0, 1)
        for rs, rb in zip(seq, bat):
            np.testing.assert_array_equal(rs.w_local, rb.w_local)
            assert rs.diagnostics == rb.diagnostics

    def test_plan_reused_across_rounds(self, fig2_dataset):
        solver = FedProxVRLocalSolver(
            step_size=0.05, num_steps=3, batch_size=16, mu=0.1, estimator="svrg"
        )
        clients, model = self._make_clients(fig2_dataset, solver)
        w0 = model.init_parameters(0)
        executor = BatchedCohortExecutor()
        executor.run_round(clients, w0, 1)
        plan_before = executor._plan
        executor.run_round(clients, w0, 2)
        assert executor._plan is plan_before
