"""Tests for repro.fl.metrics."""

import numpy as np
import pytest

from repro.core.local import FedAvgLocalSolver
from repro.datasets.base import DeviceData, FederatedDataset
from repro.fl.client import Client
from repro.fl.metrics import (
    global_accuracy,
    global_gradient_norm,
    global_loss,
    global_loss_and_gradient_norm,
    heterogeneity_sigma_bar_sq,
)
from repro.models import MultinomialLogisticModel


@pytest.fixture()
def federation(tiny_dataset):
    model = MultinomialLogisticModel(
        tiny_dataset.num_features, tiny_dataset.num_classes
    )
    solver = FedAvgLocalSolver(step_size=0.1, num_steps=1, batch_size=8)
    clients = [
        Client(d.device_id, d, model, solver, base_seed=0)
        for d in tiny_dataset.devices
    ]
    return model, clients


class TestGlobalLoss:
    def test_matches_pooled_loss(self, tiny_dataset, federation):
        """p_n-weighted device losses equal the loss over pooled data."""
        model, clients = federation
        w = model.init_parameters(0)
        X, y = tiny_dataset.global_train()
        pooled = model.loss(w, X, y)
        assert global_loss(model, clients, w) == pytest.approx(pooled)

    def test_loss_and_grad_consistent(self, tiny_dataset, federation):
        model, clients = federation
        w = model.init_parameters(1)
        loss, grad_norm = global_loss_and_gradient_norm(model, clients, w)
        assert loss == pytest.approx(global_loss(model, clients, w))
        assert grad_norm == pytest.approx(global_gradient_norm(model, clients, w))

    def test_grad_norm_matches_pooled_gradient(self, tiny_dataset, federation):
        model, clients = federation
        w = model.init_parameters(2)
        X, y = tiny_dataset.global_train()
        pooled_norm = float(np.linalg.norm(model.gradient(w, X, y)))
        assert global_gradient_norm(model, clients, w) == pytest.approx(pooled_norm)


class TestGlobalAccuracy:
    def test_matches_pooled_accuracy(self, tiny_dataset, federation):
        model, clients = federation
        w = model.init_parameters(3)
        Xt, yt = tiny_dataset.global_test()
        pooled = model.accuracy(w, Xt, yt)
        assert global_accuracy(model, clients, w) == pytest.approx(pooled)

    def test_train_split(self, tiny_dataset, federation):
        model, clients = federation
        w = model.init_parameters(3)
        X, y = tiny_dataset.global_train()
        assert global_accuracy(model, clients, w, split="train") == pytest.approx(
            model.accuracy(w, X, y)
        )

    def test_empty_test_shards_skipped(self):
        model = MultinomialLogisticModel(2, 2)
        dev = DeviceData(
            0, np.zeros((3, 2)), np.zeros(3, dtype=int), np.zeros((0, 2)), np.zeros(0)
        )
        FederatedDataset([dev], num_features=2, num_classes=2)
        solver = FedAvgLocalSolver(step_size=0.1, num_steps=1, batch_size=2)
        clients = [Client(0, dev, model, solver)]
        w = model.init_parameters(0)
        assert np.isnan(global_accuracy(model, clients, w))


class TestHeterogeneity:
    def test_identical_devices_zero(self):
        model = MultinomialLogisticModel(3, 2)
        rng = np.random.default_rng(0)
        X = rng.standard_normal((10, 3))
        y = rng.integers(0, 2, 10)
        dev_a = DeviceData(0, X, y, np.zeros((0, 3)), np.zeros(0))
        dev_b = DeviceData(1, X.copy(), y.copy(), np.zeros((0, 3)), np.zeros(0))
        solver = FedAvgLocalSolver(step_size=0.1, num_steps=1, batch_size=4)
        clients = [Client(0, dev_a, model, solver), Client(1, dev_b, model, solver)]
        sigma_sq = heterogeneity_sigma_bar_sq(model, clients, model.init_parameters(0))
        assert sigma_sq == pytest.approx(0.0, abs=1e-20)

    def test_heterogeneous_devices_positive(self, tiny_dataset, federation):
        model, clients = federation
        sigma_sq = heterogeneity_sigma_bar_sq(model, clients, model.init_parameters(0))
        assert sigma_sq > 0.1
