"""Tests for repro.fl.server and repro.fl.runner."""

import numpy as np
import pytest

from repro.core.local import FedAvgLocalSolver
from repro.exceptions import ConfigurationError
from repro.fl.aggregation import coordinate_median
from repro.fl.client import Client
from repro.fl.delays import make_uniform_delays
from repro.fl.runner import FederatedRunConfig, resolve_smoothness, run_federated
from repro.fl.server import FederatedServer
from repro.models import MultinomialLogisticModel, make_mlp_model


def build_server(dataset, **kwargs):
    model = MultinomialLogisticModel(dataset.num_features, dataset.num_classes)
    solver = FedAvgLocalSolver(step_size=0.02, num_steps=4, batch_size=8)
    clients = [
        Client(d.device_id, d, model, solver, base_seed=0) for d in dataset.devices
    ]
    return FederatedServer(clients, eval_model=model, **kwargs), model


class TestFederatedServer:
    def test_train_returns_history_and_model(self, tiny_dataset):
        server, model = build_server(tiny_dataset)
        w0 = model.init_parameters(0)
        history, w = server.train(w0, 5, eval_every=1)
        assert history.num_rounds == 5
        assert w.shape == w0.shape

    def test_loss_decreases(self, tiny_dataset):
        server, model = build_server(tiny_dataset)
        w0 = model.init_parameters(0)
        history, _ = server.train(w0, 10)
        assert history.final("train_loss") < history.records[0].train_loss

    def test_eval_every_thins_records(self, tiny_dataset):
        server, model = build_server(tiny_dataset)
        history, _ = server.train(model.init_parameters(0), 10, eval_every=5)
        assert [r.round_index for r in history.records] == [5, 10]

    def test_final_round_always_recorded(self, tiny_dataset):
        server, model = build_server(tiny_dataset)
        history, _ = server.train(model.init_parameters(0), 7, eval_every=5)
        assert history.records[-1].round_index == 7

    def test_simulated_clock_advances(self, tiny_dataset):
        delays = make_uniform_delays(tiny_dataset.num_devices, d_cmp=0.1, d_com=2.0)
        server, model = build_server(tiny_dataset, delay_model=delays)
        history, _ = server.train(model.init_parameters(0), 3)
        # each round: d_com + d_cmp * (num_steps + 1 diagnostic eval) = 2.5
        assert history.final("sim_time") == pytest.approx(3 * 2.5)

    def test_delay_model_size_mismatch_raises(self, tiny_dataset):
        delays = make_uniform_delays(tiny_dataset.num_devices + 1)
        server, model = build_server(tiny_dataset, delay_model=delays)
        with pytest.raises(ConfigurationError):
            server.train(model.init_parameters(0), 1)

    def test_client_sampling(self, tiny_dataset):
        server, model = build_server(tiny_dataset, client_fraction=0.5, seed=0)
        outcome = server.run_round(model.init_parameters(0), 1)
        assert len(outcome["selected"]) == max(1, round(0.5 * tiny_dataset.num_devices))

    def test_custom_aggregator(self, tiny_dataset):
        server, model = build_server(
            tiny_dataset, aggregator=lambda vs, w: coordinate_median(vs)
        )
        history, _ = server.train(model.init_parameters(0), 3)
        assert np.isfinite(history.final("train_loss"))

    def test_no_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            FederatedServer([], eval_model=None)


class TestResolveSmoothness:
    def test_override_wins(self, tiny_dataset, tiny_model_factory):
        model = tiny_model_factory()
        assert resolve_smoothness(model, tiny_dataset, override=3.0) == 3.0

    def test_analytic_for_logistic(self, tiny_dataset, tiny_model_factory):
        model = tiny_model_factory()
        X, _ = tiny_dataset.global_train()
        assert resolve_smoothness(model, tiny_dataset) == pytest.approx(
            model.smoothness(X)
        )

    def test_power_iteration_for_nn(self, tiny_dataset):
        model = make_mlp_model(tiny_dataset.num_features, tiny_dataset.num_classes, (6,))
        L = resolve_smoothness(model, tiny_dataset, seed=0)
        assert L > 0


class TestRunFederated:
    def test_runs_and_improves(self, tiny_dataset, tiny_model_factory):
        cfg = FederatedRunConfig(
            algorithm="fedproxvr-sarah",
            num_rounds=10,
            num_local_steps=5,
            beta=5.0,
            mu=0.1,
            batch_size=8,
            seed=0,
        )
        history, w = run_federated(tiny_dataset, tiny_model_factory, cfg)
        assert history.num_rounds == 10
        assert history.final("train_loss") < history.records[0].train_loss
        assert history.config["beta"] == 5.0
        assert history.config["L"] > 0

    def test_reproducible_same_seed(self, tiny_dataset, tiny_model_factory):
        cfg = FederatedRunConfig(num_rounds=4, num_local_steps=3, seed=11)
        h1, w1 = run_federated(tiny_dataset, tiny_model_factory, cfg)
        h2, w2 = run_federated(tiny_dataset, tiny_model_factory, cfg)
        np.testing.assert_array_equal(w1, w2)
        assert h1.series("train_loss") == h2.series("train_loss")

    def test_different_seed_differs(self, tiny_dataset, tiny_model_factory):
        h1, w1 = run_federated(
            tiny_dataset, tiny_model_factory,
            FederatedRunConfig(num_rounds=3, num_local_steps=3, seed=1),
        )
        h2, w2 = run_federated(
            tiny_dataset, tiny_model_factory,
            FederatedRunConfig(num_rounds=3, num_local_steps=3, seed=2),
        )
        assert not np.allclose(w1, w2)

    def test_thread_executor_matches_sequential(self, tiny_dataset, tiny_model_factory):
        base = dict(num_rounds=3, num_local_steps=3, batch_size=8, seed=5)
        h_seq, w_seq = run_federated(
            tiny_dataset, tiny_model_factory, FederatedRunConfig(executor="sequential", **base)
        )
        h_par, w_par = run_federated(
            tiny_dataset, tiny_model_factory,
            FederatedRunConfig(executor="thread", max_workers=3, **base),
        )
        np.testing.assert_allclose(w_seq, w_par)

    def test_unknown_algorithm_rejected(self, tiny_dataset, tiny_model_factory):
        cfg = FederatedRunConfig(algorithm="sgd-magic", num_rounds=2)
        with pytest.raises(ConfigurationError):
            run_federated(tiny_dataset, tiny_model_factory, cfg)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            FederatedRunConfig(executor="gpu-cluster")

    def test_solver_kwargs_forwarded(self, tiny_dataset, tiny_model_factory):
        cfg = FederatedRunConfig(
            algorithm="fedproxvr-svrg",
            num_rounds=2,
            num_local_steps=3,
            solver_kwargs={"iterate_selection": "average"},
        )
        history, _ = run_federated(tiny_dataset, tiny_model_factory, cfg)
        assert history.config["solver_iterate_selection"] == "average"
