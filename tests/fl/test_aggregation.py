"""Tests for repro.fl.aggregation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.fl.aggregation import coordinate_median, trimmed_mean, weighted_average


class TestWeightedAverage:
    def test_uniform_default(self):
        out = weighted_average([np.array([0.0, 2.0]), np.array([2.0, 0.0])])
        np.testing.assert_allclose(out, [1.0, 1.0])

    def test_weights_applied(self):
        out = weighted_average(
            [np.array([0.0]), np.array([10.0])], weights=[1.0, 3.0]
        )
        np.testing.assert_allclose(out, [7.5])

    def test_weights_renormalized(self):
        a = weighted_average([np.zeros(2), np.ones(2)], weights=[2, 6])
        b = weighted_average([np.zeros(2), np.ones(2)], weights=[0.25, 0.75])
        np.testing.assert_allclose(a, b)

    def test_out_buffer_used(self):
        buf = np.zeros(2)
        out = weighted_average([np.ones(2)], out=buf)
        assert out is buf
        np.testing.assert_allclose(buf, 1.0)

    def test_single_vector_identity(self):
        v = np.array([3.0, -1.0])
        np.testing.assert_allclose(weighted_average([v]), v)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_average([])

    def test_ragged_rejected(self):
        with pytest.raises(DimensionMismatchError):
            weighted_average([np.zeros(2), np.zeros(3)])

    def test_weight_count_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            weighted_average([np.zeros(2)], weights=[1.0, 2.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_average([np.zeros(2), np.zeros(2)], weights=[1.0, -1.0])

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_average([np.zeros(2)], weights=[0.0])


class TestRobustAggregators:
    def test_median_ignores_single_outlier(self):
        vecs = [np.array([1.0]), np.array([1.1]), np.array([1000.0])]
        assert coordinate_median(vecs)[0] == pytest.approx(1.1)

    def test_median_coordinatewise(self):
        vecs = [np.array([0.0, 10.0]), np.array([5.0, 0.0]), np.array([10.0, 5.0])]
        np.testing.assert_allclose(coordinate_median(vecs), [5.0, 5.0])

    def test_trimmed_mean_drops_extremes(self):
        vecs = [np.array([v]) for v in [0.0, 1.0, 2.0, 3.0, 100.0]]
        out = trimmed_mean(vecs, trim_fraction=0.2)
        assert out[0] == pytest.approx(2.0)

    def test_trimmed_mean_zero_trim_is_mean(self):
        vecs = [np.array([1.0]), np.array([3.0])]
        assert trimmed_mean(vecs, 0.0)[0] == pytest.approx(2.0)

    def test_trimmed_mean_overtrim_rejected(self):
        vecs = [np.array([1.0]), np.array([2.0])]
        with pytest.raises(ConfigurationError):
            trimmed_mean(vecs, 0.5)

    def test_trim_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean([np.zeros(1)] * 4, -0.1)
