"""Tests for the massive-cohort virtual-client path (ROADMAP item 1).

The contract under test has two halves:

* **bit-identity** — at ``client_fraction = 1.0`` a lazy run (packed
  registry, LRU-hydrated clients, regenerated shards) produces the same
  bits as the classic eager run, on every executor; and
* **O(K) residency** — under sampling only the selected cohort is ever
  hydrated, Theorem-1 quantities come from registry metadata, and the
  pool's LRU bounds live client objects.
"""

import numpy as np
import pytest

from repro.core.local import FedProxVRLocalSolver
from repro.datasets import make_synthetic
from repro.datasets.base import LazyFederatedDataset
from repro.exceptions import ConfigurationError
from repro.fl.registry import (
    ClientRegistry,
    EagerClientPool,
    LazyClientPool,
    VirtualClient,
)
from repro.fl.runner import (
    FederatedRunConfig,
    build_client_pool,
    default_lru_capacity,
    run_federated,
)
from repro.models import MultinomialLogisticModel

EXECUTORS = ("sequential", "batched", "thread", "process")


@pytest.fixture(scope="module")
def eager_dataset():
    return make_synthetic(
        alpha=1.0,
        beta=1.0,
        num_devices=8,
        num_features=10,
        num_classes=5,
        min_size=25,
        max_size=90,
        seed=11,
    )


@pytest.fixture(scope="module")
def lazy_dataset():
    return make_synthetic(
        alpha=1.0,
        beta=1.0,
        num_devices=8,
        num_features=10,
        num_classes=5,
        min_size=25,
        max_size=90,
        seed=11,
        lazy=True,
    )


def _factory(dataset):
    return lambda: MultinomialLogisticModel(
        dataset.num_features, dataset.num_classes, l2=1e-4
    )


def _solver():
    return FedProxVRLocalSolver(
        step_size=0.05, num_steps=3, batch_size=16, mu=0.1
    )


class TestLazyDatasetIdentity:
    def test_lazy_devices_match_eager(self, eager_dataset, lazy_dataset):
        assert isinstance(lazy_dataset, LazyFederatedDataset)
        for k in range(eager_dataset.num_devices):
            eager_dev = eager_dataset.devices[k]
            lazy_dev = lazy_dataset.device(k)
            np.testing.assert_array_equal(eager_dev.X_train, lazy_dev.X_train)
            np.testing.assert_array_equal(eager_dev.y_train, lazy_dev.y_train)
            np.testing.assert_array_equal(eager_dev.X_test, lazy_dev.X_test)
            np.testing.assert_array_equal(eager_dev.y_test, lazy_dev.y_test)

    def test_rehydration_is_deterministic(self, lazy_dataset):
        first = lazy_dataset.device(3)
        again = lazy_dataset.device(3)
        np.testing.assert_array_equal(first.X_train, again.X_train)
        np.testing.assert_array_equal(first.y_train, again.y_train)

    def test_probe_covers_federation_when_bound_large(
        self, eager_dataset, lazy_dataset
    ):
        X_full, y_full = eager_dataset.global_train()
        X_probe, y_probe = lazy_dataset.probe_train(32)
        np.testing.assert_array_equal(X_full, X_probe)
        np.testing.assert_array_equal(y_full, y_probe)

    def test_probe_bounded(self, lazy_dataset):
        X, _ = lazy_dataset.probe_train(2)
        expected = int(lazy_dataset.train_sizes[:2].sum())
        assert X.shape[0] == expected

    def test_train_sizes_match_devices(self, eager_dataset, lazy_dataset):
        np.testing.assert_array_equal(
            lazy_dataset.train_sizes,
            [d.num_train for d in eager_dataset.devices],
        )

    def test_generator_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            make_synthetic(
                alpha=1.0,
                beta=1.0,
                num_devices=4,
                seed=np.random.default_rng(0),
                lazy=True,
            )


class TestRegistry:
    def test_weights_from_metadata_match_eager(self, eager_dataset):
        registry = ClientRegistry.from_dataset(eager_dataset)
        sizes = np.array(
            [d.num_train for d in eager_dataset.devices], dtype=np.float64
        )
        np.testing.assert_array_equal(registry.weights(), sizes / sizes.sum())
        assert registry.weights().sum() == pytest.approx(1.0)

    def test_subset_weights_renormalized(self, eager_dataset):
        registry = ClientRegistry.from_dataset(eager_dataset)
        sub = registry.subset_weights([0, 3, 5])
        full = registry.weights()[[0, 3, 5]]
        np.testing.assert_allclose(sub, full / full.sum())
        assert sub.sum() == pytest.approx(1.0)

    def test_total_train(self, eager_dataset):
        registry = ClientRegistry.from_dataset(eager_dataset)
        assert registry.total_train == sum(
            d.num_train for d in eager_dataset.devices
        )

    def test_virtual_out_of_range(self, eager_dataset):
        registry = ClientRegistry.from_dataset(eager_dataset)
        with pytest.raises(ConfigurationError):
            registry.virtual(registry.size)

    def test_hydrate_validates_shard_size(self, eager_dataset):
        vc = VirtualClient(client_id=0, num_train=999)
        with pytest.raises(ConfigurationError):
            vc.hydrate(
                eager_dataset.devices[0],
                MultinomialLogisticModel(10, 5),
                _solver(),
            )

    def test_registry_is_metadata_only(self, lazy_dataset):
        # Building the registry must not materialize any shard.
        registry = ClientRegistry.from_dataset(lazy_dataset)
        assert registry.size == 8
        assert registry.client_ids.dtype == np.int64
        assert registry.num_train.dtype == np.int64


class TestLazyClientPool:
    def _pool(self, dataset, capacity=None):
        return LazyClientPool(
            dataset,
            _factory(dataset),
            _solver(),
            share_model=True,
            base_seed=7,
            capacity=capacity,
        )

    def test_lru_hit_and_eviction(self, lazy_dataset):
        pool = self._pool(lazy_dataset, capacity=2)
        pool.hydrate([0, 1])
        assert (pool.hydration_count, pool.hit_count) == (2, 0)
        pool.hydrate([0])  # hot -> hit
        assert pool.hit_count == 1
        pool.hydrate([2])  # evicts 1 (LRU order: 1, 0, 2 -> drop 1)
        assert pool.eviction_count == 1
        pool.hydrate([0])  # still resident
        assert pool.hit_count == 2
        pool.hydrate([1])  # was evicted -> re-hydrates
        assert pool.hydration_count == 4

    def test_hydrated_client_matches_eager(self, eager_dataset, lazy_dataset):
        pool = self._pool(lazy_dataset)
        client = pool.client(4)
        assert client.client_id == 4
        np.testing.assert_array_equal(
            client.data.X_train, eager_dataset.devices[4].X_train
        )

    def test_shared_model_is_one_instance(self, lazy_dataset):
        pool = self._pool(lazy_dataset)
        a, b = pool.hydrate([0, 1])
        assert a.model is b.model

    def test_private_models_when_not_shared(self, lazy_dataset):
        pool = LazyClientPool(
            lazy_dataset,
            _factory(lazy_dataset),
            _solver(),
            share_model=False,
            capacity=8,
        )
        a, b = pool.hydrate([0, 1])
        assert a.model is not b.model

    def test_iter_clients_does_not_pollute_lru(self, lazy_dataset):
        pool = self._pool(lazy_dataset, capacity=2)
        pool.hydrate([0, 1])
        list(pool.iter_clients(range(8)))  # eval-style full sweep
        assert pool.eviction_count == 0
        assert pool.hit_count == 2  # 0 and 1 were served from the pool
        pool.hydrate([0, 1])  # still resident after the sweep
        assert pool.hydration_count == 2 + 6  # sweep built 6 transients

    def test_population_is_none(self, lazy_dataset):
        assert self._pool(lazy_dataset).population is None

    def test_default_capacity(self):
        assert default_lru_capacity(1000, 1.0) == 1000
        assert default_lru_capacity(1000, 0.004) == 64  # floor
        assert default_lru_capacity(1000, 0.1) == 400  # 4 rounds' cohorts
        assert default_lru_capacity(1000, 0.5, override=10) == 10
        assert default_lru_capacity(10, 0.5, override=100) == 10


class TestBitIdentity:
    """client_fraction = 1.0: lazy and eager runs share every bit."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_lazy_matches_eager(self, eager_dataset, lazy_dataset, executor):
        kwargs = dict(
            algorithm="fedproxvr-svrg",
            num_rounds=3,
            num_local_steps=3,
            batch_size=16,
            mu=0.1,
            seed=5,
            executor=executor,
        )
        eager_history, eager_w = run_federated(
            eager_dataset,
            _factory(eager_dataset),
            FederatedRunConfig(virtual_clients=False, **kwargs),
        )
        lazy_history, lazy_w = run_federated(
            lazy_dataset,
            _factory(lazy_dataset),
            FederatedRunConfig(virtual_clients=True, **kwargs),
        )
        np.testing.assert_array_equal(eager_w, lazy_w)
        for er, lr in zip(eager_history.records, lazy_history.records):
            assert er.train_loss == lr.train_loss
            assert er.grad_norm == lr.grad_norm
            assert er.test_accuracy == lr.test_accuracy

    def test_virtual_on_eager_dataset(self, eager_dataset):
        """The lazy pool also wraps eager datasets bit-identically."""
        kwargs = dict(
            algorithm="fedavg",
            num_rounds=2,
            num_local_steps=3,
            batch_size=16,
            mu=0.0,
            seed=5,
        )
        _, w_eager = run_federated(
            eager_dataset,
            _factory(eager_dataset),
            FederatedRunConfig(virtual_clients=False, **kwargs),
        )
        _, w_virtual = run_federated(
            eager_dataset,
            _factory(eager_dataset),
            FederatedRunConfig(virtual_clients=True, **kwargs),
        )
        np.testing.assert_array_equal(w_eager, w_virtual)


class TestSampledCohorts:
    def test_full_vs_sampled_convergence(self, lazy_dataset):
        """Sampling K < N still optimizes the same objective."""
        base = dict(
            algorithm="fedproxvr-svrg",
            num_rounds=8,
            num_local_steps=5,
            batch_size=16,
            mu=0.1,
            seed=5,
        )
        full_history, _ = run_federated(
            lazy_dataset, _factory(lazy_dataset), FederatedRunConfig(**base)
        )
        sampled_history, _ = run_federated(
            lazy_dataset,
            _factory(lazy_dataset),
            FederatedRunConfig(client_fraction=0.5, **base),
        )
        full = [r.train_loss for r in full_history.records]
        sampled = [r.train_loss for r in sampled_history.records]
        # Both descend from the same start; the sampled trajectory is
        # noisier but must land in the same regime, not diverge.
        assert sampled[-1] < sampled[0]
        assert full[-1] < full[0]
        assert sampled[-1] < 0.5 * (sampled[0] + full[0])
        assert sampled_history.num_rounds == full_history.num_rounds

    def test_sampled_run_hydrates_only_cohorts(self, lazy_dataset):
        pool = build_client_pool(
            lazy_dataset,
            _factory(lazy_dataset),
            _solver(),
            share_model=True,
            seed=5,
            virtual=True,
            client_fraction=0.25,
        )
        # capacity floor (64) exceeds N=8 here, so nothing ever evicts;
        # what matters is that hydrate() touches only the asked-for ids.
        pool.hydrate([1, 6])
        assert pool.hydration_count == 2

    def test_eval_cap_deterministic(self, lazy_dataset):
        config = FederatedRunConfig(
            algorithm="fedproxvr-svrg",
            num_rounds=3,
            num_local_steps=3,
            batch_size=16,
            mu=0.1,
            seed=5,
            client_fraction=0.5,
            max_eval_clients=4,
        )
        h1, w1 = run_federated(
            lazy_dataset, _factory(lazy_dataset), config
        )
        h2, w2 = run_federated(
            lazy_dataset, _factory(lazy_dataset), config
        )
        np.testing.assert_array_equal(w1, w2)
        assert [r.train_loss for r in h1.records] == [
            r.train_loss for r in h2.records
        ]

    def test_process_executor_rejects_partial_virtual(self, lazy_dataset):
        config = FederatedRunConfig(
            executor="process", client_fraction=0.5, num_rounds=1
        )
        with pytest.raises(ConfigurationError):
            run_federated(lazy_dataset, _factory(lazy_dataset), config)

    def test_partial_virtual_rejection_names_constraint_and_fixes(
        self, lazy_dataset
    ):
        # The message must explain the shared-memory constraint and name
        # every supported way out, not just say "unsupported".
        config = FederatedRunConfig(
            executor="process", client_fraction=0.5, num_rounds=1
        )
        with pytest.raises(ConfigurationError) as excinfo:
            run_federated(lazy_dataset, _factory(lazy_dataset), config)
        message = str(excinfo.value)
        assert "shared-memory" in message
        assert "ShmArena" in message
        assert "client_fraction = 0.5" in message
        for alternative in (
            "executor='thread'",
            "client_fraction=1.0",
            "virtual_clients=False",
        ):
            assert alternative in message


class TestTelemetry:
    def test_registry_and_cohort_metrics_emitted(self, lazy_dataset):
        from repro.obs import InMemorySink, telemetry

        sink = InMemorySink()
        telemetry.configure([sink])
        try:
            run_federated(
                lazy_dataset,
                _factory(lazy_dataset),
                FederatedRunConfig(
                    algorithm="fedavg",
                    num_rounds=2,
                    num_local_steps=2,
                    batch_size=16,
                    mu=0.0,
                    seed=5,
                    client_fraction=0.5,
                ),
            )
        finally:
            telemetry.shutdown()
        summary = [e for e in sink.events if e["type"] == "run_summary"]
        assert len(summary) == 1
        metrics = summary[0]["metrics"]
        assert metrics["fl.registry.size"]["last"] == 8.0
        assert metrics["fl.cohort.hydrations"]["total"] > 0
        # Round 2 reuses round 1's pooled clients (and the eval sweep
        # re-serves them), so hits must be recorded too.
        assert metrics["fl.cohort.lru_hits"]["total"] > 0


class TestEagerPool:
    def test_wraps_list_and_exposes_registry(self, eager_dataset):
        from repro.fl.runner import build_clients

        clients = build_clients(
            eager_dataset,
            _factory(eager_dataset),
            _solver(),
            share_model=True,
            seed=5,
        )
        pool = EagerClientPool(clients)
        assert pool.population is clients or pool.population == clients
        assert pool.registry.size == len(clients)
        assert pool.hydrate([2, 0]) == [clients[2], clients[0]]
        np.testing.assert_array_equal(
            pool.registry.num_train,
            [c.num_train for c in clients],
        )
