"""Tests for repro.fl.history."""

import json

import pytest

from repro.fl.history import RoundRecord, TrainingHistory, format_comparison


def record(i, loss, acc=0.5, grad=1.0):
    return RoundRecord(
        round_index=i,
        train_loss=loss,
        grad_norm=grad,
        test_accuracy=acc,
        sim_time=float(i),
        wall_time=float(i) * 0.1,
    )


class TestTrainingHistory:
    def make(self):
        h = TrainingHistory(algorithm="fedavg", dataset="toy", config={"tau": 5})
        for i, loss in enumerate([3.0, 2.0, 1.5], start=1):
            h.append(record(i, loss, acc=0.3 + 0.1 * i))
        return h

    def test_series(self):
        h = self.make()
        assert h.series("train_loss") == [3.0, 2.0, 1.5]
        assert h.num_rounds == 3

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            self.make().series("nope")

    def test_final_and_best(self):
        h = self.make()
        assert h.final("train_loss") == 1.5
        assert h.best("test_accuracy") == pytest.approx(0.6)
        assert h.best("train_loss", maximize=False) == 1.5

    def test_empty_history_nan(self):
        h = TrainingHistory("a", "b")
        assert h.final("train_loss") != h.final("train_loss")  # NaN
        assert h.series("train_loss") == []

    def test_diverged_on_nan(self):
        h = TrainingHistory("a", "b")
        h.append(record(1, float("nan")))
        assert h.diverged()

    def test_diverged_on_ceiling(self):
        h = TrainingHistory("a", "b")
        h.append(record(1, 10.0))
        assert h.diverged(loss_ceiling=5.0)
        assert not h.diverged(loss_ceiling=50.0)

    def test_rounds_to_targets(self):
        h = self.make()
        assert h.rounds_to_loss(2.0) == 2
        assert h.rounds_to_loss(0.1) is None
        assert h.rounds_to_accuracy(0.5) == 2
        assert h.rounds_to_accuracy(0.99) is None

    def test_roundtrip_dict(self):
        h = self.make()
        back = TrainingHistory.from_dict(h.to_dict())
        assert back.algorithm == h.algorithm
        assert back.config == h.config
        assert back.series("train_loss") == h.series("train_loss")

    def test_to_json_file(self, tmp_path):
        h = self.make()
        path = tmp_path / "hist.json"
        h.to_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["algorithm"] == "fedavg"
        assert len(payload["records"]) == 3

    def test_straggler_gap_roundtrips_through_json(self, tmp_path):
        h = TrainingHistory("fedavg", "toy")
        r = record(1, 1.0)
        r.straggler_gap = 0.125
        h.append(r)
        path = tmp_path / "hist.json"
        h.to_json(str(path))
        back = TrainingHistory.from_dict(json.loads(path.read_text()))
        assert back.records[0].straggler_gap == 0.125
        assert back.series("straggler_gap") == [0.125]

    def test_loads_old_files_without_straggler_gap(self):
        # histories serialized before the field existed must still load
        h = self.make()
        payload = h.to_dict()
        for rec in payload["records"]:
            del rec["straggler_gap"]
        back = TrainingHistory.from_dict(payload)
        assert all(r.straggler_gap is None for r in back.records)

    def test_grad_dissimilarity_roundtrips_through_json(self, tmp_path):
        h = TrainingHistory("fedavg", "toy")
        r = record(1, 1.0)
        r.grad_dissimilarity = 1.25
        h.append(r)
        path = tmp_path / "hist.json"
        h.to_json(str(path))
        back = TrainingHistory.from_dict(json.loads(path.read_text()))
        assert back.records[0].grad_dissimilarity == 1.25
        assert back.series("grad_dissimilarity") == [1.25]

    def test_loads_pre_v2_files_without_grad_dissimilarity(self):
        h = self.make()
        payload = h.to_dict()
        for rec in payload["records"]:
            del rec["grad_dissimilarity"]
        back = TrainingHistory.from_dict(payload)
        assert all(r.grad_dissimilarity is None for r in back.records)

    def test_ignores_unknown_record_keys_from_future_versions(self):
        # forward tolerance: a newer writer may add fields this reader
        # does not know; loading must drop them instead of crashing
        h = self.make()
        payload = h.to_dict()
        for rec in payload["records"]:
            rec["a_future_field"] = 42
        back = TrainingHistory.from_dict(payload)
        assert back.series("train_loss") == h.series("train_loss")
        assert not hasattr(back.records[0], "a_future_field")


class TestFormatComparison:
    def test_contains_all_algorithms(self):
        h1 = TrainingHistory("fedavg", "toy")
        h1.append(record(1, 1.0, acc=0.7))
        h2 = TrainingHistory("fedproxvr-sarah", "toy")
        h2.append(record(1, 0.9, acc=0.8))
        text = format_comparison([h1, h2])
        assert "fedavg" in text
        assert "fedproxvr-sarah" in text
        assert "0.8" in text
