"""Tests for repro.fl.delays."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fl.delays import (
    DelayModel,
    DeviceDelay,
    make_heterogeneous_delays,
    make_uniform_delays,
)


class TestDeviceDelay:
    def test_round_delay_formula(self):
        d = DeviceDelay(d_cmp=0.1, d_com=2.0)
        assert d.round_delay(10) == pytest.approx(2.0 + 1.0)

    def test_gamma(self):
        assert DeviceDelay(0.5, 2.0).gamma == pytest.approx(0.25)

    def test_gamma_infinite_when_no_communication(self):
        assert DeviceDelay(1.0, 0.0).gamma == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            DeviceDelay(-0.1, 1.0)

    def test_negative_eval_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceDelay(0.1, 1.0).round_delay(-1)


class TestDelayModel:
    def test_round_delays_ordered(self):
        model = DelayModel([DeviceDelay(1.0, 0.0), DeviceDelay(0.0, 5.0)])
        delays = model.round_delays([3, 100])
        assert delays == [3.0, 5.0]

    def test_count_mismatch_rejected(self):
        model = make_uniform_delays(3)
        with pytest.raises(ConfigurationError):
            model.round_delays([1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayModel([])

    def test_mean_gamma(self):
        model = DelayModel([DeviceDelay(1.0, 1.0), DeviceDelay(3.0, 1.0)])
        assert model.mean_gamma() == pytest.approx(2.0)


class TestFactories:
    def test_uniform(self):
        model = make_uniform_delays(4, d_cmp=0.5, d_com=2.0)
        assert len(model) == 4
        assert all(d.d_cmp == 0.5 and d.d_com == 2.0 for d in model.delays)

    def test_heterogeneous_mean_roughly_matches(self):
        model = make_heterogeneous_delays(
            2000, d_cmp_mean=0.01, d_com_mean=1.0, spread=0.5, seed=0
        )
        cmp_mean = np.mean([d.d_cmp for d in model.delays])
        com_mean = np.mean([d.d_com for d in model.delays])
        assert cmp_mean == pytest.approx(0.01, rel=0.1)
        assert com_mean == pytest.approx(1.0, rel=0.1)

    def test_heterogeneous_has_spread(self):
        model = make_heterogeneous_delays(100, spread=1.0, seed=1)
        values = [d.d_com for d in model.delays]
        assert max(values) > 2 * min(values)

    def test_zero_spread_is_uniform(self):
        model = make_heterogeneous_delays(10, spread=0.0, seed=2)
        values = {round(d.d_cmp, 12) for d in model.delays}
        assert len(values) == 1

    def test_deterministic(self):
        a = make_heterogeneous_delays(5, seed=3)
        b = make_heterogeneous_delays(5, seed=3)
        assert [d.d_cmp for d in a.delays] == [d.d_cmp for d in b.delays]

    def test_bad_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            make_uniform_delays(0)
        with pytest.raises(ConfigurationError):
            make_heterogeneous_delays(0)


class TestIndexAddressing:
    """The massive-cohort hot path: draw only selected devices' delays."""

    def test_delay_at_matches_list(self):
        model = DelayModel([DeviceDelay(1.0, 0.5), DeviceDelay(2.0, 3.0)])
        assert model.delay_at(1) == model.delays[1]

    def test_round_delay_at_matches_round_delays(self):
        model = make_heterogeneous_delays(6, seed=4)
        counts = [3, 1, 4, 1, 5, 9]
        full = model.round_delays(counts)
        picked = [model.round_delay_at(i, c) for i, c in enumerate(counts)]
        assert picked == full

    def test_out_of_range_rejected(self):
        model = make_uniform_delays(3)
        with pytest.raises(ConfigurationError):
            model.delay_at(3)
        with pytest.raises(ConfigurationError):
            model.round_delay_at(-1, 5)

    def test_negative_eval_count_rejected(self):
        with pytest.raises(ConfigurationError):
            make_uniform_delays(2).round_delay_at(0, -1)


class TestPackedDelayModel:
    def test_scalar_storage_is_population_free(self):
        from repro.fl.delays import PackedDelayModel

        model = make_uniform_delays(1_000_000, d_cmp=0.25, d_com=2.0)
        assert isinstance(model, PackedDelayModel)
        assert len(model) == 1_000_000
        assert model.round_delay_at(999_999, 4) == pytest.approx(3.0)
        assert model.delay_at(0) == DeviceDelay(0.25, 2.0)

    def test_vector_form(self):
        from repro.fl.delays import PackedDelayModel

        model = PackedDelayModel(
            np.array([0.1, 0.2]), np.array([1.0, 2.0])
        )
        assert len(model) == 2
        assert model.delay_at(1) == DeviceDelay(0.2, 2.0)
        assert model.mean_gamma() == pytest.approx(0.1)

    def test_scalar_vector_mix_broadcasts(self):
        from repro.fl.delays import PackedDelayModel

        model = PackedDelayModel(0.5, np.array([1.0, 0.0, 2.0]))
        assert len(model) == 3
        assert model.delay_at(1).gamma == float("inf")
        assert model.mean_gamma() == float("inf")

    def test_inconsistent_lengths_rejected(self):
        from repro.fl.delays import PackedDelayModel

        with pytest.raises(ConfigurationError):
            PackedDelayModel(np.zeros(2), np.zeros(3))
        with pytest.raises(ConfigurationError):
            PackedDelayModel(np.zeros(2), np.zeros(2), num_devices=4)

    def test_scalars_need_explicit_count(self):
        from repro.fl.delays import PackedDelayModel

        with pytest.raises(ConfigurationError):
            PackedDelayModel(0.1, 1.0)

    def test_negative_entries_rejected(self):
        from repro.fl.delays import PackedDelayModel

        with pytest.raises(ConfigurationError):
            PackedDelayModel(np.array([-0.1, 0.2]), 1.0)

    def test_materialized_list_matches(self):
        model = make_heterogeneous_delays(4, seed=9)
        assert [model.delay_at(i) for i in range(4)] == model.delays
