"""Tests for repro.fl.compression."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fl.compression import (
    IdentityCompressor,
    SignCompressor,
    TopKSparsifier,
    UniformQuantizer,
    UpdateCompressor,
    compress_round,
)


class TestIdentity:
    def test_lossless(self):
        u = np.array([1.0, -2.0, 3.0])
        out = IdentityCompressor().compress(u)
        np.testing.assert_array_equal(out.dense, u)
        assert out.bits == 64 * 3

    def test_returns_copy(self):
        u = np.array([1.0])
        out = IdentityCompressor().compress(u)
        out.dense[0] = 99.0
        assert u[0] == 1.0


class TestTopK:
    def test_keeps_largest(self):
        u = np.array([0.1, -5.0, 0.2, 3.0])
        out = TopKSparsifier(k=2).compress(u)
        np.testing.assert_array_equal(out.dense, [0.0, -5.0, 0.0, 3.0])

    def test_fraction_mode(self):
        u = np.arange(10, dtype=np.float64)
        out = TopKSparsifier(fraction=0.3).compress(u)
        assert np.count_nonzero(out.dense) == 3

    def test_bit_accounting(self):
        out = TopKSparsifier(k=2).compress(np.array([1.0, 2.0, 3.0]))
        assert out.bits == 2 * 96

    def test_k_at_least_one(self):
        out = TopKSparsifier(fraction=1e-9).compress(np.array([1.0, 2.0]))
        assert np.count_nonzero(out.dense) == 1

    def test_k_clipped_to_size(self):
        u = np.array([1.0, 2.0])
        out = TopKSparsifier(k=10).compress(u)
        np.testing.assert_array_equal(out.dense, u)

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ConfigurationError):
            TopKSparsifier()
        with pytest.raises(ConfigurationError):
            TopKSparsifier(k=2, fraction=0.5)


class TestQuantizer:
    def test_constant_vector_exact(self):
        u = np.full(5, 3.7)
        out = UniformQuantizer(4).compress(u)
        np.testing.assert_allclose(out.dense, u)

    def test_endpoints_exact(self):
        u = np.array([-1.0, 0.5, 2.0])
        out = UniformQuantizer(8).compress(u)
        assert out.dense.min() == pytest.approx(-1.0)
        assert out.dense.max() == pytest.approx(2.0)

    def test_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        u = rng.standard_normal(100)
        bits = 6
        out = UniformQuantizer(bits).compress(u)
        step = (u.max() - u.min()) / (2**bits - 1)
        assert np.max(np.abs(out.dense - u)) <= step / 2 + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        u = rng.standard_normal(200)
        err4 = np.abs(UniformQuantizer(4).compress(u).dense - u).max()
        err8 = np.abs(UniformQuantizer(8).compress(u).dense - u).max()
        assert err8 < err4

    def test_bit_accounting(self):
        out = UniformQuantizer(8).compress(np.zeros(10))
        assert out.bits == 8 * 10 + 128

    def test_rejects_64_bits(self):
        with pytest.raises(ConfigurationError):
            UniformQuantizer(64)


class TestSign:
    def test_signs_preserved(self):
        u = np.array([2.0, -0.5, 0.0])
        out = SignCompressor().compress(u)
        np.testing.assert_array_equal(np.sign(out.dense), np.sign(u))

    def test_scale_is_mean_magnitude(self):
        u = np.array([1.0, -3.0])
        out = SignCompressor().compress(u)
        np.testing.assert_allclose(np.abs(out.dense), 2.0)

    def test_one_bit_per_coordinate(self):
        out = SignCompressor().compress(np.ones(100))
        assert out.bits == 100 + 64


class TestCompressRound:
    def test_identity_ratio_one(self):
        w = np.zeros(4)
        models = [np.ones(4), 2 * np.ones(4)]
        recon, ratio = compress_round(models, w, IdentityCompressor())
        assert ratio == pytest.approx(1.0)
        np.testing.assert_array_equal(recon[0], models[0])

    def test_topk_ratio_above_one(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal(1000)
        models = [w + rng.standard_normal(1000) for _ in range(3)]
        _, ratio = compress_round(models, w, TopKSparsifier(fraction=0.01))
        assert ratio > 10

    def test_reconstruction_anchored_on_global(self):
        w = np.array([10.0, 10.0])
        model = [np.array([10.0, 11.0])]
        recon, _ = compress_round(model, w, SignCompressor())
        # update (0, 1) -> signs (0, 1) * mean 0.5 -> w + (0, 0.5)
        np.testing.assert_allclose(recon[0], [10.0, 10.5])

    def test_dense_bits_static(self):
        assert UpdateCompressor.dense_bits(10) == 640
