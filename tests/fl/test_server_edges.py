"""Edge-path tests for the server: divergence stop, verbose, delays."""

import numpy as np
import pytest

from repro.core.local import FedAvgLocalSolver, LocalSolveResult, LocalSolver
from repro.fl.client import Client
from repro.fl.delays import make_uniform_delays
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.fl.server import FederatedServer
from repro.models import MultinomialLogisticModel


class ExplodingSolver(LocalSolver):
    """Returns NaN local models after a given round (failure injection)."""

    name = "exploder"

    def __init__(self, explode_after: int = 2):
        super().__init__(step_size=0.1, num_steps=1, batch_size=4)
        self.explode_after = explode_after
        self.calls = 0

    def solve(self, model, X, y, w_global, rng):
        self.calls += 1
        w = np.array(w_global, copy=True)
        if self.calls > self.explode_after * 10:  # rough: rounds * clients
            w[:] = np.nan
        return LocalSolveResult(
            w_local=w, num_steps=1, num_gradient_evaluations=1, start_grad_norm=1.0
        )


def build(dataset, solver=None, **kwargs):
    model = MultinomialLogisticModel(dataset.num_features, dataset.num_classes)
    solver = solver or FedAvgLocalSolver(step_size=0.05, num_steps=2, batch_size=8)
    clients = [
        Client(d.device_id, d, model, solver, base_seed=0) for d in dataset.devices
    ]
    return FederatedServer(clients, model, **kwargs), model


class TestDivergenceStop:
    def test_training_stops_on_nonfinite_loss(self, tiny_dataset):
        solver = ExplodingSolver(explode_after=2)
        server, model = build(tiny_dataset, solver=solver)
        history, _ = server.train(model.init_parameters(0), 20, eval_every=1)
        # stopped well before 20 rounds
        assert history.num_rounds < 20
        assert not np.isfinite(history.final("train_loss"))


class TestVerboseOutput:
    def test_verbose_prints_rounds(self, tiny_dataset, capsys):
        server, model = build(tiny_dataset)
        server.train(
            model.init_parameters(0), 2, eval_every=1, verbose=True,
            algorithm_name="fedavg",
        )
        out = capsys.readouterr().out
        assert "round" in out and "loss" in out


class TestDelaysThroughRunner:
    def test_heterogeneous_delay_model_passthrough(self, tiny_dataset, tiny_model_factory):
        delays = make_uniform_delays(tiny_dataset.num_devices, d_cmp=0.5, d_com=3.0)
        cfg = FederatedRunConfig(
            algorithm="fedavg", num_rounds=2, num_local_steps=4, seed=0,
            delay_model=delays,
        )
        history, _ = run_federated(tiny_dataset, tiny_model_factory, cfg)
        # 2 rounds x (3 + 0.5 * (4 steps + 1 diagnostic)) = 11
        assert history.final("sim_time") == pytest.approx(11.0)


class TestClientFractionBounds:
    def test_fraction_zero_rejected(self, tiny_dataset):
        with pytest.raises(Exception):
            build(tiny_dataset, client_fraction=0.0)

    def test_tiny_fraction_selects_one(self, tiny_dataset):
        server, model = build(tiny_dataset, client_fraction=1e-6)
        outcome = server.run_round(model.init_parameters(0), 1)
        assert len(outcome["selected"]) == 1

    def test_selection_varies_across_rounds(self, tiny_dataset):
        server, model = build(tiny_dataset, client_fraction=0.5, seed=1)
        w = model.init_parameters(0)
        selections = {tuple(server.run_round(w, s)["selected"]) for s in range(8)}
        assert len(selections) > 1
