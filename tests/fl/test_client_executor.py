"""Tests for repro.fl.client and repro.fl.executor."""

import numpy as np
import pytest

from repro.core.local import FedAvgLocalSolver
from repro.fl.client import Client
from repro.fl.executor import SequentialExecutor, ThreadPoolClientExecutor
from repro.models import MultinomialLogisticModel


def make_clients(dataset, share_model=True, solver=None, seed=0):
    solver = solver or FedAvgLocalSolver(step_size=0.05, num_steps=5, batch_size=8)
    shared = MultinomialLogisticModel(dataset.num_features, dataset.num_classes)
    clients = []
    for dev in dataset.devices:
        model = (
            shared
            if share_model
            else MultinomialLogisticModel(dataset.num_features, dataset.num_classes)
        )
        clients.append(Client(dev.device_id, dev, model, solver, base_seed=seed))
    return clients


class TestClient:
    def test_round_rng_deterministic(self, tiny_dataset):
        c = make_clients(tiny_dataset)[0]
        a = c.round_rng(3).standard_normal(4)
        b = c.round_rng(3).standard_normal(4)
        np.testing.assert_array_equal(a, b)
        assert not np.allclose(a, c.round_rng(4).standard_normal(4))

    def test_local_update_reproducible(self, tiny_dataset):
        clients = make_clients(tiny_dataset)
        c = clients[0]
        w0 = c.model.init_parameters(0)
        r1 = c.local_update(w0, round_index=1)
        r2 = c.local_update(w0, round_index=1)
        np.testing.assert_array_equal(r1.w_local, r2.w_local)

    def test_num_train(self, tiny_dataset):
        c = make_clients(tiny_dataset)[0]
        assert c.num_train == tiny_dataset.devices[0].num_train

    def test_evaluate_splits(self, tiny_dataset):
        c = make_clients(tiny_dataset)[0]
        w0 = c.model.init_parameters(0)
        for split in ("train", "test"):
            acc = c.evaluate(w0, split=split)
            assert acc is None or 0.0 <= acc <= 1.0
        with pytest.raises(ValueError):
            c.evaluate(w0, split="validation")


class TestExecutors:
    def test_sequential_order(self, tiny_dataset):
        clients = make_clients(tiny_dataset)
        w0 = clients[0].model.init_parameters(0)
        results = SequentialExecutor().run_round(clients, w0, 1)
        assert len(results) == len(clients)

    def test_thread_matches_sequential(self, tiny_dataset):
        """Parallel execution must be bit-identical to sequential."""
        w0 = MultinomialLogisticModel(
            tiny_dataset.num_features, tiny_dataset.num_classes
        ).init_parameters(0)

        seq_clients = make_clients(tiny_dataset, share_model=True)
        seq_results = SequentialExecutor().run_round(seq_clients, w0, 2)

        par_clients = make_clients(tiny_dataset, share_model=False)
        with ThreadPoolClientExecutor(max_workers=3) as pool:
            par_results = pool.run_round(par_clients, w0, 2)

        for rs, rp in zip(seq_results, par_results):
            np.testing.assert_allclose(rs.w_local, rp.w_local)

    def test_thread_rejects_shared_models(self, tiny_dataset):
        clients = make_clients(tiny_dataset, share_model=True)
        w0 = clients[0].model.init_parameters(0)
        with ThreadPoolClientExecutor(max_workers=2) as pool:
            with pytest.raises(RuntimeError, match="model instance"):
                pool.run_round(clients, w0, 1)

    def test_closed_executor_rejects_work(self, tiny_dataset):
        clients = make_clients(tiny_dataset, share_model=False)
        w0 = clients[0].model.init_parameters(0)
        pool = ThreadPoolClientExecutor(max_workers=2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run_round(clients, w0, 1)

    def test_close_idempotent(self):
        pool = ThreadPoolClientExecutor(max_workers=1)
        pool.close()
        pool.close()  # must not raise


class TestThreadPoolSizing:
    def test_default_max_workers_sized_on_first_use(self, tiny_dataset):
        import os

        clients = make_clients(tiny_dataset, share_model=False)
        with ThreadPoolClientExecutor() as pool:
            w0 = clients[0].model.init_parameters(0)
            pool.run_round(clients, w0, 1)
            expected = max(1, min(len(clients), os.cpu_count() or 1))
            assert pool._pool._max_workers == expected

    def test_distinct_model_check_cached_per_client_set(self, tiny_dataset):
        clients = make_clients(tiny_dataset, share_model=False)
        w0 = clients[0].model.init_parameters(0)
        with ThreadPoolClientExecutor(max_workers=2) as pool:
            pool.run_round(clients, w0, 1)
            key = pool._validated_clients
            pool.run_round(clients, w0, 2)
            assert pool._validated_clients is key  # not recomputed
            # a different set re-validates
            pool.run_round(clients[:3], w0, 3)
            assert pool._validated_clients != key


class TestProcessPoolExecutor:
    def test_closed_rejects_work(self, tiny_dataset):
        from repro.fl.executor_mp import ProcessPoolClientExecutor

        clients = make_clients(tiny_dataset, share_model=False)
        w0 = clients[0].model.init_parameters(0)
        pool = ProcessPoolClientExecutor(max_workers=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run_round(clients, w0, 1)
        pool.close()  # idempotent

    def test_unregistered_client_rejected(self, tiny_dataset):
        from repro.fl.executor_mp import ProcessPoolClientExecutor

        clients = make_clients(tiny_dataset, share_model=False)
        w0 = clients[0].model.init_parameters(0)
        with ProcessPoolClientExecutor(max_workers=2) as pool:
            pool.run_round(clients[:3], w0, 1)
            stranger = make_clients(tiny_dataset, share_model=False)[0]
            with pytest.raises(RuntimeError, match="registered"):
                pool.run_round([stranger], w0, 2)

    def test_subset_rounds_match_sequential(self, tiny_dataset):
        from repro.fl.executor_mp import ProcessPoolClientExecutor

        clients = make_clients(tiny_dataset, share_model=False)
        w0 = clients[0].model.init_parameters(0)
        with ProcessPoolClientExecutor(max_workers=2) as pool:
            pool.register_clients(clients)
            subset = clients[2:5]
            got = pool.run_round(subset, w0, 3)
        expected = SequentialExecutor().run_round(clients[2:5], w0, 3)
        for rp, rs in zip(got, expected):
            np.testing.assert_array_equal(rp.w_local, rs.w_local)

    def test_traced_run_emits_parented_external_spans(self, tiny_dataset):
        from repro.fl.executor_mp import ProcessPoolClientExecutor
        from repro.obs import InMemorySink, telemetry

        clients = make_clients(tiny_dataset, share_model=False)
        w0 = clients[0].model.init_parameters(0)
        sink = InMemorySink()
        telemetry.configure([sink])
        try:
            with ProcessPoolClientExecutor(max_workers=2) as pool:
                with telemetry.span("round", s=1) as round_span:
                    pool.run_round(clients, w0, 1)
                    round_id = round_span.context()["span_id"]
                seconds = pool.last_client_seconds
        finally:
            telemetry.shutdown()
        solves = [
            e for e in sink.by_type("span") if e["name"] == "local_solve"
        ]
        assert len(solves) == len(clients)
        for span in solves:
            # worker timings come home as external spans: parented on
            # the coordinator's round span, tagged with the worker's
            # process name, ids allocated parent-side (no collisions)
            assert span["parent_id"] == round_id
            assert span["process"]
            assert span["duration"] > 0.0
        ids = [e["span_id"] for e in sink.by_type("span")]
        assert len(set(ids)) == len(ids)
        assert seconds is not None and len(seconds) == len(clients)

    def test_untraced_run_reports_no_client_seconds(self, tiny_dataset):
        from repro.fl.executor_mp import ProcessPoolClientExecutor
        from repro.obs import telemetry

        assert not telemetry.enabled
        clients = make_clients(tiny_dataset, share_model=False)
        w0 = clients[0].model.init_parameters(0)
        with ProcessPoolClientExecutor(max_workers=2) as pool:
            pool.run_round(clients, w0, 1)
            assert pool.last_client_seconds is None


class TestBatchedCohortTracing:
    def test_cohort_solve_span_carries_group_signature(self, tiny_dataset):
        from repro.fl.executor import BatchedCohortExecutor
        from repro.obs import InMemorySink, telemetry

        clients = make_clients(tiny_dataset)
        w0 = clients[0].model.init_parameters(0)
        sink = InMemorySink()
        telemetry.configure([sink])
        try:
            BatchedCohortExecutor().run_round(clients, w0, 1)
        finally:
            telemetry.shutdown()
        cohorts = [
            e for e in sink.by_type("span") if e["name"] == "cohort_solve"
        ]
        assert cohorts, "homogeneous MLR cohort must take the batched path"
        for span in cohorts:
            signature = span["attrs"]["signature"]
            assert "/B=" in signature  # "<arch-sig>/B=<effective-batch>"
            assert span["attrs"]["cohort_size"] >= 1
