"""Tests for repro.fl.privacy."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fl.privacy import (
    GaussianMechanism,
    PrivacyAccountant,
    clip_update,
    privatize_round,
)


class TestClipUpdate:
    def test_inside_ball_unchanged(self):
        u = np.array([0.3, 0.4])  # norm 0.5
        out, clipped = clip_update(u, 1.0)
        np.testing.assert_array_equal(out, u)
        assert not clipped

    def test_outside_ball_projected(self):
        u = np.array([3.0, 4.0])  # norm 5
        out, clipped = clip_update(u, 1.0)
        assert clipped
        assert np.linalg.norm(out) == pytest.approx(1.0)
        # direction preserved
        np.testing.assert_allclose(out / np.linalg.norm(out), u / 5.0)

    def test_zero_vector(self):
        out, clipped = clip_update(np.zeros(3), 1.0)
        assert not clipped
        assert not out.any()

    def test_returns_copy(self):
        u = np.array([0.1, 0.1])
        out, _ = clip_update(u, 1.0)
        out[0] = 9.0
        assert u[0] == 0.1


class TestGaussianMechanism:
    def test_zero_noise_is_clipping_only(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0)
        u = np.array([3.0, 4.0])
        out = mech.privatize(u, rng=0)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_noise_scale(self):
        mech = GaussianMechanism(clip_norm=2.0, noise_multiplier=1.5)
        rng = np.random.default_rng(0)
        samples = np.stack(
            [mech.privatize(np.zeros(1000), rng) for _ in range(3)]
        )
        assert samples.std() == pytest.approx(3.0, rel=0.1)

    def test_deterministic_with_seed(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=1.0)
        a = mech.privatize(np.ones(5), rng=7)
        b = mech.privatize(np.ones(5), rng=7)
        np.testing.assert_array_equal(a, b)

    def test_epsilon_formula(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=2.0)
        delta = 1e-5
        expected = math.sqrt(2 * math.log(1.25 / delta)) / 2.0
        assert mech.epsilon_per_release(delta) == pytest.approx(expected)

    def test_more_noise_less_epsilon(self):
        weak = GaussianMechanism(1.0, 0.5).epsilon_per_release(1e-5)
        strong = GaussianMechanism(1.0, 4.0).epsilon_per_release(1e-5)
        assert strong < weak

    def test_zero_noise_infinite_epsilon(self):
        assert GaussianMechanism(1.0, 0.0).epsilon_per_release(1e-5) == math.inf

    def test_delta_validated(self):
        with pytest.raises(ConfigurationError):
            GaussianMechanism(1.0, 1.0).epsilon_per_release(0.0)


class TestPrivacyAccountant:
    def test_basic_composition_adds(self):
        acct = PrivacyAccountant(delta=1e-5)
        mech = GaussianMechanism(1.0, 2.0)
        per = mech.epsilon_per_release(1e-5)
        acct.record_release(mech)
        acct.record_release(mech)
        assert acct.total_epsilon == pytest.approx(2 * per)
        assert acct.num_releases == 2

    def test_remaining_budget(self):
        acct = PrivacyAccountant(delta=1e-5)
        mech = GaussianMechanism(1.0, 10.0)
        acct.record_release(mech)
        assert acct.remaining(10.0) == pytest.approx(
            10.0 - mech.epsilon_per_release(1e-5)
        )

    def test_invalid_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyAccountant(delta=1.5)


class TestPrivatizeRound:
    def test_reconstruction_anchored_on_global(self):
        w = np.full(4, 10.0)
        models = [w + np.array([0.1, 0.0, 0.0, 0.0])]
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0)
        out = privatize_round(models, w, mech, seed=0)
        np.testing.assert_allclose(out[0], models[0])

    def test_large_updates_clipped(self):
        w = np.zeros(3)
        models = [np.full(3, 100.0)]
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0)
        out = privatize_round(models, w, mech, seed=0)
        assert np.linalg.norm(out[0] - w) == pytest.approx(1.0)

    def test_accountant_charged_once_per_round(self):
        acct = PrivacyAccountant(delta=1e-5)
        mech = GaussianMechanism(1.0, 2.0)
        privatize_round([np.ones(2)] * 5, np.zeros(2), mech, accountant=acct, seed=0)
        assert acct.num_releases == 1

    def test_noisy_training_still_converges(self, tiny_dataset, tiny_model_factory):
        """End-to-end: FedProxVR with DP-released updates still trains
        under mild noise."""
        from repro.core.local import FedProxVRLocalSolver
        from repro.fl.client import Client
        from repro.fl.aggregation import weighted_average
        from repro.fl.metrics import global_loss

        model = tiny_model_factory()
        X, _ = tiny_dataset.global_train()
        L = model.smoothness(X)
        solver = FedProxVRLocalSolver(
            step_size=1.0 / (5 * L), num_steps=8, batch_size=8, mu=0.1,
            evaluate_final=False,
        )
        clients = [
            Client(d.device_id, d, model, solver, base_seed=0)
            for d in tiny_dataset.devices
        ]
        mech = GaussianMechanism(clip_norm=5.0, noise_multiplier=0.01)
        acct = PrivacyAccountant(delta=1e-5)
        w = model.init_parameters(0)
        first = global_loss(model, clients, w)
        for s in range(1, 16):
            locals_ = [c.local_update(w, s).w_local for c in clients]
            released = privatize_round(
                locals_, w, mech, accountant=acct, seed=s
            )
            w = weighted_average(released, tiny_dataset.weights())
        assert global_loss(model, clients, w) < first
        assert acct.num_releases == 15
        assert acct.total_epsilon > 0
