"""Tests for per-device metrics."""

import numpy as np

from repro.core.local import FedAvgLocalSolver
from repro.fl.client import Client
from repro.fl.metrics import global_accuracy, per_device_accuracy
from repro.models import MultinomialLogisticModel


def make_clients(dataset):
    model = MultinomialLogisticModel(dataset.num_features, dataset.num_classes)
    solver = FedAvgLocalSolver(step_size=0.05, num_steps=1, batch_size=8)
    return model, [
        Client(d.device_id, d, model, solver, base_seed=0) for d in dataset.devices
    ]


class TestPerDeviceAccuracy:
    def test_keys_are_device_ids(self, tiny_dataset):
        model, clients = make_clients(tiny_dataset)
        w = model.init_parameters(0)
        accs = per_device_accuracy(model, clients, w)
        expected_ids = {
            d.device_id for d in tiny_dataset.devices if d.num_test > 0
        }
        assert set(accs) == expected_ids

    def test_values_in_unit_interval(self, tiny_dataset):
        model, clients = make_clients(tiny_dataset)
        w = model.init_parameters(1)
        for acc in per_device_accuracy(model, clients, w).values():
            assert 0.0 <= acc <= 1.0

    def test_weighted_mean_matches_global(self, tiny_dataset):
        model, clients = make_clients(tiny_dataset)
        w = model.init_parameters(2)
        accs = per_device_accuracy(model, clients, w)
        sizes = {
            d.device_id: d.num_test for d in tiny_dataset.devices if d.num_test > 0
        }
        total = sum(sizes.values())
        weighted = sum(accs[i] * sizes[i] for i in accs) / total
        assert weighted == global_accuracy(model, clients, w)

    def test_train_split(self, tiny_dataset):
        model, clients = make_clients(tiny_dataset)
        w = model.init_parameters(3)
        accs = per_device_accuracy(model, clients, w, split="train")
        assert len(accs) == tiny_dataset.num_devices

    def test_reveals_heterogeneous_performance(self, tiny_dataset):
        """After training, per-device accuracies should differ — the
        heterogeneity the averaged metric hides."""
        model, clients = make_clients(tiny_dataset)
        X, y = tiny_dataset.global_train()
        w = model.init_parameters(0)
        for _ in range(100):
            w = w - 0.3 * model.gradient(w, X, y)
        accs = list(per_device_accuracy(model, clients, w).values())
        assert max(accs) - min(accs) > 0.01
