"""Property-based tests for proximal operators (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.proximal import L1Prox, QuadraticProx

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


def vec(n=4):
    return arrays(np.float64, (n,), elements=finite_floats)


@st.composite
def prox_inputs(draw):
    anchor = draw(vec())
    x = draw(vec())
    z = draw(vec())
    mu = draw(st.floats(min_value=0.0, max_value=100.0))
    eta = draw(st.floats(min_value=1e-4, max_value=10.0))
    return anchor, x, z, mu, eta


class TestQuadraticProxProperties:
    @given(prox_inputs())
    @settings(max_examples=150, deadline=None)
    def test_firm_nonexpansiveness(self, data):
        """||prox(x) - prox(z)|| <= ||x - z||, the defining property of
        any prox of a convex function."""
        anchor, x, z, mu, eta = data
        prox = QuadraticProx(mu, anchor)
        lhs = np.linalg.norm(prox(x, eta) - prox(z, eta))
        rhs = np.linalg.norm(x - z)
        assert lhs <= rhs * (1 + 1e-10) + 1e-12

    @given(prox_inputs())
    @settings(max_examples=150, deadline=None)
    def test_optimality_condition(self, data):
        """mu (w - anchor) + (w - x)/eta = 0 at w = prox(x)."""
        anchor, x, _, mu, eta = data
        prox = QuadraticProx(mu, anchor)
        w = prox(x, eta)
        residual = mu * (w - anchor) + (w - x) / eta
        scale = max(1.0, np.linalg.norm(x), np.linalg.norm(anchor) * mu)
        assert np.linalg.norm(residual) <= 1e-8 * scale

    @given(prox_inputs())
    @settings(max_examples=100, deadline=None)
    def test_output_between_input_and_anchor(self, data):
        """The quadratic prox is a convex combination of x and anchor,
        so each coordinate lies in the interval they span."""
        anchor, x, _, mu, eta = data
        w = QuadraticProx(mu, anchor)(x, eta)
        lo = np.minimum(x, anchor) - 1e-9
        hi = np.maximum(x, anchor) + 1e-9
        assert np.all(w >= lo) and np.all(w <= hi)

    @given(prox_inputs())
    @settings(max_examples=100, deadline=None)
    def test_prox_decreases_objective(self, data):
        """h(prox(x)) + ||prox(x)-x||^2/(2 eta) <= h(x)  (x is feasible)."""
        anchor, x, _, mu, eta = data
        prox = QuadraticProx(mu, anchor)
        w = prox(x, eta)
        lhs = prox.value(w) + np.dot(w - x, w - x) / (2 * eta)
        assert lhs <= prox.value(x) + 1e-8 * max(1.0, abs(prox.value(x)))


class TestL1ProxProperties:
    @given(vec(), st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=1e-3, max_value=5.0))
    @settings(max_examples=150, deadline=None)
    def test_shrinks_magnitudes(self, x, lam, eta):
        w = L1Prox(lam)(x, eta)
        assert np.all(np.abs(w) <= np.abs(x) + 1e-12)

    @given(vec(), st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=1e-3, max_value=5.0))
    @settings(max_examples=150, deadline=None)
    def test_preserves_signs(self, x, lam, eta):
        w = L1Prox(lam)(x, eta)
        nonzero = w != 0
        assert np.all(np.sign(w[nonzero]) == np.sign(x[nonzero]))

    @given(vec(), st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=150, deadline=None)
    def test_thresholds_small_coordinates_to_zero(self, x, lam, eta):
        w = L1Prox(lam)(x, eta)
        small = np.abs(x) <= lam * eta
        assert np.all(w[small] == 0.0)

    @given(vec(), st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=1e-3, max_value=5.0))
    @settings(max_examples=100, deadline=None)
    def test_nonexpansive(self, x, lam, eta):
        prox = L1Prox(lam)
        z = -x
        assert np.linalg.norm(prox(x, eta) - prox(z, eta)) <= np.linalg.norm(
            x - z
        ) + 1e-12
