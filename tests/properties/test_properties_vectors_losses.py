"""Property-based tests: parameter packing and loss heads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.losses import SoftmaxCrossEntropy, log_softmax, softmax
from repro.utils.parameter_vector import ParameterSpec

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


@st.composite
def shape_lists(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    shapes = []
    for _ in range(n):
        ndim = draw(st.integers(min_value=0, max_value=3))
        shapes.append(
            tuple(draw(st.integers(min_value=1, max_value=4)) for _ in range(ndim))
        )
    return shapes


class TestParameterSpecProperties:
    @given(shape_lists(), st.integers(0, 2**31 - 1))
    @settings(max_examples=150, deadline=None)
    def test_flatten_unflatten_roundtrip(self, shapes, seed):
        spec = ParameterSpec(shapes)
        rng = np.random.default_rng(seed)
        arrays_in = [rng.standard_normal(s) for s in shapes]
        out = spec.unflatten(spec.flatten(arrays_in))
        for a, b in zip(arrays_in, out):
            np.testing.assert_array_equal(a, b)

    @given(shape_lists())
    @settings(max_examples=100, deadline=None)
    def test_size_is_sum_of_products(self, shapes):
        spec = ParameterSpec(shapes)
        assert spec.size == sum(int(np.prod(s)) for s in shapes)

    @given(shape_lists(), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_pieces_tile_the_vector(self, shapes, seed):
        spec = ParameterSpec(shapes)
        rng = np.random.default_rng(seed)
        vec = rng.standard_normal(spec.size)
        reassembled = np.concatenate(
            [spec.piece(vec, i).ravel() for i in range(len(shapes))]
        ) if shapes else np.zeros(0)
        np.testing.assert_array_equal(reassembled, vec)


@st.composite
def score_batches(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    k = draw(st.integers(min_value=2, max_value=6))
    scores = draw(arrays(np.float64, (n, k), elements=finite))
    y = draw(
        st.lists(st.integers(min_value=0, max_value=k - 1), min_size=n, max_size=n)
    )
    return scores, np.array(y)


class TestSoftmaxProperties:
    @given(score_batches())
    @settings(max_examples=150, deadline=None)
    def test_softmax_is_probability_simplex(self, data):
        scores, _ = data
        p = softmax(scores)
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)

    @given(score_batches(), finite)
    @settings(max_examples=150, deadline=None)
    def test_softmax_shift_invariance(self, data, shift):
        scores, _ = data
        np.testing.assert_allclose(
            softmax(scores), softmax(scores + shift), atol=1e-12
        )

    @given(score_batches())
    @settings(max_examples=150, deadline=None)
    def test_cross_entropy_nonnegative(self, data):
        scores, y = data
        assert SoftmaxCrossEntropy().value(scores, y) >= 0.0

    @given(score_batches())
    @settings(max_examples=150, deadline=None)
    def test_cross_entropy_grad_rows_sum_zero(self, data):
        scores, y = data
        _, grad = SoftmaxCrossEntropy().value_and_grad(scores, y)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-10)

    @given(score_batches())
    @settings(max_examples=100, deadline=None)
    def test_log_softmax_nonpositive(self, data):
        scores, _ = data
        assert np.all(log_softmax(scores) <= 1e-12)
