"""Property-based tests for local solvers and estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import SARAHEstimator, SVRGEstimator
from repro.core.local import FedProxVRLocalSolver
from repro.models import LinearRegressionModel


def make_problem(seed, n=30, d=6):
    rng = np.random.default_rng(seed)
    model = LinearRegressionModel(d, fit_intercept=False)
    X = rng.standard_normal((n, d))
    w_true = rng.standard_normal(d)
    y = X @ w_true + 0.1 * rng.standard_normal(n)
    return model, X, y, rng.standard_normal(d)


class TestSolverProperties:
    @given(st.integers(0, 10_000), st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_large_mu_keeps_output_near_anchor(self, seed, mu):
        """The prox radius shrinks like 1/mu: output distance to the
        anchor must not grow as mu grows."""
        model, X, y, w0 = make_problem(seed)
        L = model.smoothness(X)

        def distance(mu_value):
            solver = FedProxVRLocalSolver(
                step_size=1.0 / (5 * L), num_steps=10, batch_size=8,
                mu=mu_value, estimator="svrg", evaluate_final=False,
            )
            out = solver.solve(model, X, y, w0, np.random.default_rng(seed))
            return float(np.linalg.norm(out.w_local - w0))

        assert distance(mu * 10) <= distance(mu) + 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_solver_deterministic_given_rng(self, seed):
        model, X, y, w0 = make_problem(seed)
        L = model.smoothness(X)
        solver = FedProxVRLocalSolver(
            step_size=1.0 / (5 * L), num_steps=8, batch_size=8, mu=0.1,
            estimator="sarah",
        )
        a = solver.solve(model, X, y, w0, np.random.default_rng(seed)).w_local
        b = solver.solve(model, X, y, w0, np.random.default_rng(seed)).w_local
        np.testing.assert_array_equal(a, b)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_solver_never_mutates_global_model(self, seed):
        model, X, y, w0 = make_problem(seed)
        snapshot = w0.copy()
        L = model.smoothness(X)
        solver = FedProxVRLocalSolver(
            step_size=1.0 / (5 * L), num_steps=5, batch_size=8, mu=0.5,
        )
        solver.solve(model, X, y, w0, np.random.default_rng(seed))
        np.testing.assert_array_equal(w0, snapshot)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_output_is_finite(self, seed):
        model, X, y, w0 = make_problem(seed)
        L = model.smoothness(X)
        solver = FedProxVRLocalSolver(
            step_size=1.0 / (3 * L), num_steps=12, batch_size=4, mu=0.1,
            estimator="sarah",
        )
        out = solver.solve(model, X, y, w0, np.random.default_rng(seed))
        assert np.all(np.isfinite(out.w_local))
        assert np.isfinite(out.start_grad_norm)


class TestEstimatorProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_full_batch_estimates_are_exact(self, seed):
        """With the full dataset as the 'minibatch', both VR estimators
        return exactly the full gradient at any iterate."""
        model, X, y, w0 = make_problem(seed)
        full0 = model.gradient(w0, X, y)
        w_t = w0 + np.random.default_rng(seed).standard_normal(w0.size) * 0.1
        truth = model.gradient(w_t, X, y)
        for est_cls in (SVRGEstimator, SARAHEstimator):
            est = est_cls()
            est.start_epoch(w0, full0)
            v = est.estimate(model, X, y, w_t)
            np.testing.assert_allclose(v, truth, atol=1e-10)

    @given(st.integers(0, 10_000), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_sarah_telescopes_to_full_gradient_on_full_batches(self, seed, steps):
        """Running SARAH with full batches for several steps keeps
        v_t == grad F(w_t): the recursion telescopes exactly."""
        model, X, y, w0 = make_problem(seed)
        est = SARAHEstimator()
        v = est.start_epoch(w0, model.gradient(w0, X, y))
        rng = np.random.default_rng(seed)
        w = w0
        for _ in range(steps):
            w = w - 0.01 * v
            v = est.estimate(model, X, y, w)
        np.testing.assert_allclose(v, model.gradient(w, X, y), atol=1e-9)
