"""Property-based tests for the dataset partitioning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.partition import (
    assign_device_labels,
    pathological_partition,
    power_law_sizes,
)
from repro.datasets.splits import train_test_split_device


class TestPartitionProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=2, max_value=10),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_label_assignment_covers_and_bounds(self, devices, classes, seed):
        per_device = min(2, classes)
        sets = assign_device_labels(devices, classes, per_device, seed=seed)
        assert len(sets) == devices
        for s in sets:
            assert len(s) == per_device
            assert 0 <= s.min() and s.max() < classes
        if devices * per_device >= classes:
            covered = set(np.concatenate(sets).tolist())
            assert covered == set(range(classes))

    @given(
        st.integers(min_value=1, max_value=10),
        st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=10),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_sizes_always_honored(self, classes_minus1, sizes, seed):
        num_classes = classes_minus1 + 1
        y = np.repeat(np.arange(num_classes), 30)
        parts = pathological_partition(
            y,
            len(sizes),
            labels_per_device=min(2, num_classes),
            sizes=sizes,
            seed=seed,
        )
        assert [len(p) for p in parts] == list(sizes)
        for p in parts:
            assert np.all(p >= 0) and np.all(p < y.size)

    @given(st.integers(1, 100), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_power_law_sizes_positive(self, n, seed):
        sizes = power_law_sizes(n, min_size=5, seed=seed)
        assert sizes.shape == (n,)
        assert np.all(sizes >= 5)


class TestSplitProperties:
    @given(
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_split_partitions_exactly(self, n, fraction, seed):
        X = np.arange(n, dtype=np.float64).reshape(n, 1)
        y = np.arange(n)
        X_tr, y_tr, X_te, y_te = train_test_split_device(
            X, y, train_fraction=fraction, seed=seed
        )
        # no sample lost or duplicated
        assert len(X_tr) + len(X_te) == n
        combined = np.sort(np.concatenate([y_tr, y_te]))
        np.testing.assert_array_equal(combined, np.arange(n))
        # at least one training sample
        assert len(X_tr) >= 1
        # features stay aligned with labels
        np.testing.assert_array_equal(X_tr[:, 0], y_tr)
