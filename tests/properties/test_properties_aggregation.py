"""Property-based tests for aggregation rules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fl.aggregation import coordinate_median, trimmed_mean, weighted_average

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def vector_stack(draw, min_vectors=1, max_vectors=8, dim=5):
    n = draw(st.integers(min_value=min_vectors, max_value=max_vectors))
    return [draw(arrays(np.float64, (dim,), elements=finite)) for _ in range(n)]


@st.composite
def stack_with_weights(draw):
    vecs = draw(vector_stack())
    weights = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=1e3),
            min_size=len(vecs),
            max_size=len(vecs),
        )
    )
    return vecs, weights


class TestWeightedAverageProperties:
    @given(stack_with_weights())
    @settings(max_examples=150, deadline=None)
    def test_within_coordinatewise_hull(self, data):
        """A convex combination lies in the coordinate-wise hull."""
        vecs, weights = data
        out = weighted_average(vecs, weights)
        stacked = np.stack(vecs)
        span = np.max(np.abs(stacked)) + 1.0
        assert np.all(out >= stacked.min(axis=0) - 1e-9 * span)
        assert np.all(out <= stacked.max(axis=0) + 1e-9 * span)

    @given(vector_stack(), finite)
    @settings(max_examples=100, deadline=None)
    def test_translation_equivariance(self, vecs, shift):
        out = weighted_average(vecs)
        shifted = weighted_average([v + shift for v in vecs])
        span = max(1.0, abs(shift), max(np.max(np.abs(v)) for v in vecs))
        np.testing.assert_allclose(shifted, out + shift, atol=1e-7 * span)

    @given(stack_with_weights())
    @settings(max_examples=100, deadline=None)
    def test_weight_scale_invariance(self, data):
        vecs, weights = data
        a = weighted_average(vecs, weights)
        b = weighted_average(vecs, [w * 7.5 for w in weights])
        np.testing.assert_allclose(a, b, atol=1e-9 * (1 + np.max(np.abs(a))))

    @given(arrays(np.float64, (5,), elements=finite), st.integers(2, 6))
    @settings(max_examples=100, deadline=None)
    def test_identical_vectors_fixed_point(self, v, n):
        np.testing.assert_allclose(
            weighted_average([v] * n), v, atol=1e-12 * (1 + np.max(np.abs(v)))
        )


class TestRobustAggregationProperties:
    @given(vector_stack(min_vectors=3))
    @settings(max_examples=100, deadline=None)
    def test_median_permutation_invariant(self, vecs):
        a = coordinate_median(vecs)
        b = coordinate_median(list(reversed(vecs)))
        np.testing.assert_array_equal(a, b)

    @given(vector_stack(min_vectors=3, max_vectors=7))
    @settings(max_examples=100, deadline=None)
    def test_median_bounded_by_extremes(self, vecs):
        out = coordinate_median(vecs)
        stacked = np.stack(vecs)
        assert np.all(out >= stacked.min(axis=0))
        assert np.all(out <= stacked.max(axis=0))

    @given(vector_stack(min_vectors=5, max_vectors=10))
    @settings(max_examples=100, deadline=None)
    def test_trimmed_mean_between_min_and_max(self, vecs):
        out = trimmed_mean(vecs, 0.2)
        stacked = np.stack(vecs)
        # Magnitude-relative slack: the mean of K values of size ~1e5
        # carries eps-scale rounding far above any absolute 1e-12.
        span = np.max(np.abs(stacked)) + 1.0
        assert np.all(out >= stacked.min(axis=0) - 1e-9 * span)
        assert np.all(out <= stacked.max(axis=0) + 1e-9 * span)

    @given(vector_stack(min_vectors=5, max_vectors=10), finite)
    @settings(max_examples=75, deadline=None)
    def test_median_resists_single_corruption(self, vecs, poison):
        """Replacing one device with any value moves the median by at
        most the spread of the honest values."""
        honest = coordinate_median(vecs)
        corrupted = list(vecs)
        corrupted[0] = np.full_like(vecs[0], poison)
        out = coordinate_median(corrupted)
        stacked = np.stack(vecs)
        spread = stacked.max(axis=0) - stacked.min(axis=0)
        assert np.all(np.abs(out - honest) <= spread + 1e-9)
