"""Property-based tests for the theory module's structural claims."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import theory
from repro.core.theory import ProblemConstants
from repro.exceptions import InfeasibleParametersError

betas = st.floats(min_value=3.1, max_value=1e3)
thetas = st.floats(min_value=0.01, max_value=0.99)
mus = st.floats(min_value=0.6, max_value=1e3)
sigmas = st.floats(min_value=0.0, max_value=10.0)

CONST = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=0.0)


class TestLemma1Monotonicity:
    @given(betas, thetas, mus)
    @settings(max_examples=200, deadline=None)
    def test_lower_bound_positive(self, beta, theta, mu):
        assume(mu > CONST.lam + 1e-6)
        lo = theory.tau_lower_bound(beta, theta, mu, CONST)
        assert lo > 0

    @given(betas, mus, st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=200, deadline=None)
    def test_lower_bound_monotone_in_theta(self, beta, mu, theta):
        assume(mu > CONST.lam + 1e-6)
        lo_tight = theory.tau_lower_bound(beta, theta, mu, CONST)
        lo_loose = theory.tau_lower_bound(beta, min(0.99, theta * 1.5), mu, CONST)
        assert lo_tight >= lo_loose

    @given(betas)
    @settings(max_examples=200, deadline=None)
    def test_sarah_upper_bound_increasing_in_beta(self, beta):
        assert theory.tau_upper_bound_sarah(beta * 1.1) > theory.tau_upper_bound_sarah(
            beta
        )

    @given(st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=200, deadline=None)
    def test_svrg_a_condition_holds_at_min(self, tau):
        a = theory.svrg_min_a(tau)
        assert a - 4 >= 4 * math.sqrt(a * (tau + 1)) - 1e-6 * a

    @given(betas)
    @settings(max_examples=100, deadline=None)
    def test_svrg_never_exceeds_sarah(self, beta):
        assert theory.tau_upper_bound_svrg(beta) <= theory.tau_upper_bound_sarah(beta)


class TestTheorem1Structure:
    @given(thetas, mus, sigmas)
    @settings(max_examples=200, deadline=None)
    def test_factor_decreases_with_heterogeneity(self, theta, mu, sigma_sq):
        assume(mu > CONST.lam + 1e-6)
        base = theory.federated_factor(theta, mu, CONST)
        worse = theory.federated_factor(
            theta, mu, ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=sigma_sq + 0.5)
        )
        assert worse < base + 1e-12

    @given(mus, sigmas, st.floats(min_value=0.01, max_value=0.3))
    @settings(max_examples=200, deadline=None)
    def test_factor_decreases_with_theta(self, mu, sigma_sq, theta):
        c = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=sigma_sq)
        assume(mu > c.lam + 1e-6)
        tight = theory.federated_factor(theta, mu, c)
        loose = theory.federated_factor(min(0.99, theta * 2), mu, c)
        assert loose <= tight + 1e-12

    @given(thetas, mus)
    @settings(max_examples=100, deadline=None)
    def test_positive_factor_implies_theta_below_cap(self, theta, mu):
        assume(mu > CONST.lam + 1e-6)
        factor = theory.federated_factor(theta, mu, CONST)
        if factor > 0:
            assert theta < theory.theta_accuracy_cap(CONST.sigma_bar_sq)

    @given(st.floats(min_value=0.01, max_value=10.0), thetas, mus,
           st.floats(min_value=1e-4, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_corollary_T_monotone_in_delta(self, delta, theta, mu, eps):
        assume(mu > CONST.lam + 1e-6)
        try:
            t1 = theory.global_iterations_required(delta, theta, mu, CONST, eps)
        except InfeasibleParametersError:
            assume(False)
            return
        t2 = theory.global_iterations_required(2 * delta, theta, mu, CONST, eps)
        assert t2 >= t1


class TestTrainingTimeStructure:
    @given(st.floats(min_value=1, max_value=1e4),
           st.floats(min_value=0, max_value=1e3),
           st.floats(min_value=0, max_value=1e2),
           st.floats(min_value=0, max_value=1e2))
    @settings(max_examples=200, deadline=None)
    def test_nonnegative_and_linear_in_T(self, T, tau, d_com, d_cmp):
        t1 = theory.training_time(T, tau, d_com, d_cmp)
        t2 = theory.training_time(2 * T, tau, d_com, d_cmp)
        assert t1 >= 0
        assert abs(t2 - 2 * t1) <= 1e-9 * max(1.0, t2)
