"""Tests for repro.analysis (multi-seed replication)."""

import numpy as np
import pytest

from repro.analysis import (
    ReplicatedRun,
    compare_replicated,
    paired_seed_advantage,
    run_replicated,
    summarize,
)
from repro.exceptions import ConfigurationError
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.runner import FederatedRunConfig


def fake_history(losses, accs=None, rounds=None):
    h = TrainingHistory(algorithm="x", dataset="toy")
    rounds = rounds or list(range(1, len(losses) + 1))
    accs = accs or [0.5] * len(losses)
    for i, loss, acc in zip(rounds, losses, accs):
        h.append(RoundRecord(i, loss, 1.0, acc, float(i), 0.1 * i))
    return h


class TestReplicatedRun:
    def test_series_mean_std(self):
        run = ReplicatedRun("x", [fake_history([2.0, 1.0]), fake_history([4.0, 3.0])])
        s = run.series("train_loss")
        np.testing.assert_allclose(s.mean, [3.0, 2.0])
        np.testing.assert_allclose(s.std, [np.sqrt(2), np.sqrt(2)])
        assert s.num_seeds == 2

    def test_single_seed_zero_std(self):
        run = ReplicatedRun("x", [fake_history([2.0, 1.0])])
        s = run.series("train_loss")
        np.testing.assert_array_equal(s.std, [0.0, 0.0])

    def test_mismatched_rounds_rejected(self):
        run = ReplicatedRun(
            "x",
            [fake_history([1.0, 2.0]), fake_history([1.0], rounds=[1])],
        )
        with pytest.raises(ConfigurationError):
            run.series("train_loss")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicatedRun("x", []).series("train_loss")

    def test_last_and_format(self):
        run = ReplicatedRun("x", [fake_history([2.0, 1.0])])
        s = run.series("train_loss")
        mean, std = s.last()
        assert mean == 1.0 and std == 0.0
        assert "train_loss" in s.format_row()

    def test_final_values(self):
        run = ReplicatedRun("x", [fake_history([2.0, 1.0]), fake_history([2.0, 1.5])])
        np.testing.assert_allclose(run.final_values("train_loss"), [1.0, 1.5])


class TestPairedAdvantage:
    def test_positive_when_a_wins(self):
        a = ReplicatedRun("a", [fake_history([1.0]), fake_history([1.1])])
        b = ReplicatedRun("b", [fake_history([2.0]), fake_history([2.1])])
        stats = paired_seed_advantage(a, b)
        assert stats["mean_advantage"] == pytest.approx(1.0)
        assert stats["win_fraction"] == 1.0
        assert stats["num_seeds"] == 2

    def test_accuracy_direction(self):
        a = ReplicatedRun("a", [fake_history([1.0], accs=[0.9])])
        b = ReplicatedRun("b", [fake_history([1.0], accs=[0.5])])
        stats = paired_seed_advantage(
            a, b, metric="test_accuracy", lower_is_better=False
        )
        assert stats["mean_advantage"] == pytest.approx(0.4)

    def test_seed_count_mismatch_rejected(self):
        a = ReplicatedRun("a", [fake_history([1.0])])
        b = ReplicatedRun("b", [fake_history([1.0]), fake_history([2.0])])
        with pytest.raises(ConfigurationError):
            paired_seed_advantage(a, b)


class TestEndToEnd:
    def test_run_replicated(self, tiny_dataset, tiny_model_factory):
        cfg = FederatedRunConfig(num_rounds=4, num_local_steps=3, eval_every=2)
        run = run_replicated(
            tiny_dataset, tiny_model_factory, cfg, seeds=[0, 1, 2]
        )
        assert len(run.histories) == 3
        s = run.series("train_loss")
        assert s.num_seeds == 3
        assert np.all(np.isfinite(s.mean))
        # different seeds actually produced different trajectories
        assert s.std.max() > 0

    def test_compare_and_summarize(self, tiny_dataset, tiny_model_factory):
        configs = {
            "fedavg": FederatedRunConfig(
                algorithm="fedavg", num_rounds=3, num_local_steps=3, eval_every=3
            ),
            "vr": FederatedRunConfig(
                algorithm="fedproxvr-svrg", num_rounds=3, num_local_steps=3,
                mu=0.1, eval_every=3,
            ),
        }
        runs = compare_replicated(
            tiny_dataset, tiny_model_factory, configs, seeds=[0, 1]
        )
        text = summarize(runs)
        assert "fedavg" in text and "vr" in text
        assert "+-" in text

    def test_empty_seeds_rejected(self, tiny_dataset, tiny_model_factory):
        with pytest.raises(ConfigurationError):
            run_replicated(
                tiny_dataset, tiny_model_factory, FederatedRunConfig(), seeds=[]
            )
