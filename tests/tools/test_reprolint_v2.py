"""reprolint v2: provenance (RL6xx) and hygiene (RL7xx) rules, the
SARIF reporter, ``--fix``, statement-scoped suppressions, and the
stale-baseline ratchet.

Unlike test_reprolint.py (which scopes fixtures to the v1 per-file
families), every fixture here runs with ALL rule families enabled —
these tests assert the whole-program pipeline end to end.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.config import LintConfig
from tools.reprolint.engine import lint_paths
from tools.reprolint.fixes import apply_fixes, plan_fixes
from tools.reprolint.reporters import render_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_tree(root: Path, files: dict) -> LintConfig:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return LintConfig(root=root)


def run_lint(root: Path, files: dict):
    config = make_tree(root, files)
    return lint_paths([root / "src"], config), config


def rule_ids(report):
    return [f.rule_id for f in report.findings]


def findings_for(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


def write_pyproject(root: Path) -> Path:
    (root / "pyproject.toml").write_text(
        textwrap.dedent(
            """\
            [tool.reprolint]
            src-root = "src"
            baseline = "baseline.json"
            """
        )
    )
    return root / "pyproject.toml"


# ---------------------------------------------------------------------------
# RL600 — RNG lineage provenance
# ---------------------------------------------------------------------------


class TestRawGenerator:
    def test_raw_default_rng_in_fl_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/bad.py": """\
                import numpy as np

                rng = np.random.default_rng(7)
                """
            },
        )
        [finding] = findings_for(report, "RL600")
        assert finding.line == 3
        assert "SeedSequence lineage" in finding.message

    def test_aliased_factory_flagged_through_dataflow(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/core/sneaky.py": """\
                import numpy as np

                make = np.random.default_rng
                rng = make(3)
                """
            },
        )
        [finding] = findings_for(report, "RL600")
        assert finding.extra["via_alias"] is True

    def test_blessed_factories_pass(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/good.py": """\
                from repro.utils.rng import as_generator, spawn_generators

                rng = as_generator(7)
                gens = spawn_generators(7, 4)
                first = gens[0]
                """
            },
        )
        assert findings_for(report, "RL600") == []

    def test_rng_module_itself_exempt(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/utils/rng.py": """\
                import numpy as np

                def as_generator(seed):
                    return np.random.default_rng(seed)
                """
            },
        )
        assert findings_for(report, "RL600") == []


# ---------------------------------------------------------------------------
# RL601 — hyperparameter provenance (the acceptance fixture)
# ---------------------------------------------------------------------------


class TestHyperparameterProvenance:
    def test_unvalidated_beta_reaching_driver_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/experiments.py": """\
                from repro.fl.runner import run_federated

                beta = 3.0
                result = run_federated(data, beta=beta, mu=0.5)
                """
            },
        )
        [finding] = findings_for(report, "RL601")
        assert finding.extra["beta"] == 3.0
        assert "lemma1_feasible" in finding.message

    def test_validated_beta_passes(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/experiments.py": """\
                from repro.core.theory import lemma1_feasible
                from repro.fl.runner import run_federated

                beta = 3.0
                lemma1_feasible(beta, 0.5)
                result = run_federated(data, beta=beta, mu=0.5)
                """
            },
        )
        assert findings_for(report, "RL601") == []

    def test_feasible_beta_passes_without_validation(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/experiments.py": """\
                from repro.fl.runner import run_federated

                beta = 3.5
                result = run_federated(data, beta=beta, mu=0.5)
                """
            },
        )
        assert findings_for(report, "RL601") == []

    def test_bad_beta_on_one_branch_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/experiments.py": """\
                from repro.fl.runner import run_federated

                beta = 5.0
                if quick:
                    beta = 2.0
                result = run_federated(data, beta=beta)
                """
            },
        )
        [finding] = findings_for(report, "RL601")
        assert finding.extra["beta"] == 2.0

    def test_negative_mu_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/experiments.py": """\
                from repro.fl.runner import run_federated

                penalty = -0.25
                result = run_federated(data, beta=4.0, mu=penalty)
                """
            },
        )
        [finding] = findings_for(report, "RL601")
        assert finding.extra["mu"] == -0.25

    def test_tau_above_sarah_cap_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/experiments.py": """\
                from repro.fl.runner import run_federated

                beta_v = 4.0
                tau_v = 100.0
                result = run_federated(data, beta=beta_v, tau=tau_v)
                """
            },
        )
        [finding] = findings_for(report, "RL601")
        # SARAH cap (eq. 13): (5 * 16 - 16) / 8 = 8.
        assert finding.extra["tau"] == 100.0
        assert finding.extra["bound"] == 8.0

    def test_literal_at_call_site_left_to_rl500(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/experiments.py": """\
                from repro.fl.runner import run_federated

                result = run_federated(data, beta=2.0)
                """
            },
        )
        assert findings_for(report, "RL601") == []
        assert len(findings_for(report, "RL500")) == 1


# ---------------------------------------------------------------------------
# RL7xx — whole-program hygiene
# ---------------------------------------------------------------------------


class TestHygiene:
    def test_import_cycle_reported_once_on_first_member(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/alpha.py": """\
                from repro.bravo import g

                def f():
                    return g()
                """,
                "src/repro/bravo.py": """\
                from repro.alpha import f

                def g():
                    return f()
                """,
            },
        )
        [finding] = findings_for(report, "RL700")
        assert finding.path.endswith("alpha.py")
        assert finding.extra["cycle"] == ["repro.alpha", "repro.bravo"]

    def test_package_reexport_is_not_a_cycle(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/pkg/__init__.py": """\
                from repro.pkg.mod import thing

                __all__ = ["thing"]
                """,
                "src/repro/pkg/sibling.py": """\
                def helper():
                    return 1
                """,
                "src/repro/pkg/mod.py": """\
                from repro.pkg import sibling

                def thing():
                    return sibling.helper()
                """,
            },
        )
        assert findings_for(report, "RL700") == []

    def test_broken_all_entry_flagged_and_dead_export_info(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/leaf.py": """\
                def real():
                    return 1

                __all__ = ["real", "ghost"]
                """
            },
        )
        [broken] = findings_for(report, "RL701")
        assert broken.extra["export"] == "ghost"
        assert broken.extra["fixable"] == "prune_export"
        [dead] = findings_for(report, "RL702")
        assert dead.extra["export"] == "real"
        assert dead.severity.value == "info"

    def test_consumed_export_not_dead(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/leaf.py": """\
                def real():
                    return 1

                __all__ = ["real"]
                """,
                "src/repro/consumer.py": """\
                from repro.leaf import real

                value = real()
                """,
            },
        )
        assert findings_for(report, "RL702") == []

    def test_package_init_exports_exempt_from_dead_export(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/pkg/__init__.py": """\
                from repro.pkg.mod import thing

                __all__ = ["thing"]
                """,
                "src/repro/pkg/mod.py": """\
                def thing():
                    return 1
                """,
            },
        )
        assert findings_for(report, "RL702") == []

    def test_unreachable_code_one_finding_per_block(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/deadcode.py": """\
                def f():
                    return 1
                    a = 2
                    b = 3
                """
            },
        )
        [finding] = findings_for(report, "RL703")
        assert finding.line == 3
        assert finding.severity.value == "warning"

    def test_unused_import_flagged_with_binding(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/tidy.py": """\
                import os
                import sys

                print(sys.argv)
                """
            },
        )
        [finding] = findings_for(report, "RL704")
        assert finding.extra["binding"] == "os"
        assert finding.extra["fixable"] == "remove_import"

    def test_unused_import_exemptions(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                # __future__, TYPE_CHECKING, and ``as``-re-export are exempt.
                "src/repro/exempt.py": """\
                from __future__ import annotations

                from typing import TYPE_CHECKING

                from repro.utils.rng import as_generator as as_generator

                if TYPE_CHECKING:
                    from repro.fl.runner import FederatedRunConfig

                def f(cfg: "FederatedRunConfig"):
                    return as_generator(0)
                """,
                # __init__ without __all__: implicit public surface.
                "src/repro/pkg/__init__.py": """\
                from repro.pkg.mod import thing
                """,
                "src/repro/pkg/mod.py": """\
                def thing():
                    return 1
                """,
            },
        )
        assert findings_for(report, "RL704") == []


# ---------------------------------------------------------------------------
# Statement-scoped suppressions
# ---------------------------------------------------------------------------


class TestSuppressionSpans:
    FILES = {
        "src/repro/multiline.py": """\
        from repro.fl.runner import run_federated

        result = run_federated(  # reprolint: disable=RL500
            data,
            beta=2.0,
        )
        """
    }

    def test_disable_on_first_line_covers_continuation_lines(self, tmp_path):
        report, _ = run_lint(tmp_path, self.FILES)
        assert findings_for(report, "RL500") == []
        assert report.suppressed_count >= 1

    def test_same_fixture_without_comment_is_flagged(self, tmp_path):
        files = {
            "src/repro/multiline.py": self.FILES[
                "src/repro/multiline.py"
            ].replace("  # reprolint: disable=RL500", "")
        }
        report, _ = run_lint(tmp_path, files)
        [finding] = findings_for(report, "RL500")
        assert finding.line == 5  # the beta=2.0 continuation line

    def test_compound_header_comment_covers_body(self, tmp_path):
        # v3 closed the v2 gap: a disable on the compound statement's
        # header now covers its body (rules often anchor construct-level
        # findings to body lines).
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/blockhdr.py": """\
                import numpy as np

                if flag:  # reprolint: disable=RL200
                    np.random.seed(0)
                """
            },
        )
        assert findings_for(report, "RL200") == []
        assert report.suppressed_count >= 1

    def test_body_comment_does_not_leak_to_sibling_lines(self, tmp_path):
        # A disable *inside* the body still scopes to its own statement:
        # the second seed() call must stay flagged.
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/blockbody.py": """\
                import numpy as np

                if flag:
                    np.random.seed(0)  # reprolint: disable=RL200
                    np.random.seed(1)
                """
            },
        )
        [finding] = findings_for(report, "RL200")
        assert finding.line == 5

    def test_header_comment_does_not_cover_following_statement(self, tmp_path):
        # Coverage stops at the compound statement's end_lineno.
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/blockafter.py": """\
                import numpy as np

                if flag:  # reprolint: disable=RL200
                    np.random.seed(0)
                np.random.seed(1)
                """
            },
        )
        [finding] = findings_for(report, "RL200")
        assert finding.line == 5

    def test_def_header_comment_covers_function_body(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/defhdr.py": """\
                import numpy as np


                def reseed():  # reprolint: disable=RL200
                    np.random.seed(0)
                """
            },
        )
        assert findings_for(report, "RL200") == []


# ---------------------------------------------------------------------------
# Stale-baseline ratchet
# ---------------------------------------------------------------------------


class TestStaleBaseline:
    FILES = {
        "src/repro/core/bad.py": """\
        import numpy as np

        np.random.seed(3)
        """
    }

    def _baseline_then_fix(self, tmp_path, capsys):
        make_tree(tmp_path, self.FILES)
        pyproject = write_pyproject(tmp_path)
        argv = [str(tmp_path / "src"), "--config", str(pyproject)]
        assert reprolint_main(argv + ["--update-baseline"]) == 0
        # The violation is then fixed: its baseline entry goes stale.
        (tmp_path / "src/repro/core/bad.py").write_text(
            "import numpy as np\n\nvalue = np.float64(3.0)\n"
        )
        capsys.readouterr()
        return argv

    def test_stale_entries_reported(self, tmp_path, capsys):
        argv = self._baseline_then_fix(tmp_path, capsys)
        assert reprolint_main(argv) == 0
        assert "stale baseline" in capsys.readouterr().out

    def test_fail_stale_baseline_gates(self, tmp_path, capsys):
        argv = self._baseline_then_fix(tmp_path, capsys)
        assert reprolint_main(argv + ["--fail-stale-baseline"]) == 1

    def test_prune_baseline_then_tight(self, tmp_path, capsys):
        argv = self._baseline_then_fix(tmp_path, capsys)
        assert reprolint_main(argv + ["--prune-baseline"]) == 0
        assert json.loads((tmp_path / "baseline.json").read_text())["entries"] == {}
        capsys.readouterr()
        assert reprolint_main(argv + ["--fail-stale-baseline"]) == 0


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------


class TestSarif:
    def test_sarif_structure_and_level_mapping(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/leaf.py": """\
                def real():
                    return 1

                __all__ = ["real", "ghost"]
                """
            },
        )
        log = json.loads(render_sarif(report))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        by_rule = {r["ruleId"]: r for r in run["results"]}
        assert by_rule["RL701"]["level"] == "error"
        assert by_rule["RL702"]["level"] == "note"  # info maps to note
        region = by_rule["RL701"]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 4
        assert by_rule["RL701"]["partialFingerprints"]["reprolint/v1"]

    def test_cli_writes_sarif_to_output_file(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/repro/ok.py": "value = 1\n"})
        pyproject = write_pyproject(tmp_path)
        out = tmp_path / "report.sarif"
        code = reprolint_main(
            [
                str(tmp_path / "src"),
                "--config",
                str(pyproject),
                "--format",
                "sarif",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# --fix
# ---------------------------------------------------------------------------


class TestFixes:
    def test_remove_unused_import_and_idempotency(self, tmp_path):
        report, config = run_lint(
            tmp_path,
            {
                "src/repro/tidy.py": """\
                import os
                from typing import List, Optional

                def f(xs: List[int]) -> int:
                    return len(xs)
                """
            },
        )
        fixes = plan_fixes(report.findings, config)
        assert apply_fixes(fixes) == 1
        fixed = (tmp_path / "src/repro/tidy.py").read_text()
        assert "import os" not in fixed
        assert "from typing import List" in fixed
        assert "Optional" not in fixed
        # Idempotent: a second pass plans zero edits.
        report2 = lint_paths([tmp_path / "src"], config)
        assert findings_for(report2, "RL704") == []
        assert plan_fixes(report2.findings, config) == []

    def test_prune_all_preserves_multiline_style(self, tmp_path):
        report, config = run_lint(
            tmp_path,
            {
                "src/repro/leaf.py": """\
                def real():
                    return 1

                __all__ = [
                    "real",
                    "ghost",
                ]
                """
            },
        )
        fixes = plan_fixes(report.findings, config)
        assert apply_fixes(fixes) == 1
        fixed = (tmp_path / "src/repro/leaf.py").read_text()
        assert '"ghost"' not in fixed
        assert fixed.count("\n") >= 6  # list stayed multi-line
        report2 = lint_paths([tmp_path / "src"], config)
        assert findings_for(report2, "RL701") == []

    def test_comment_in_span_skips_fix(self, tmp_path):
        report, config = run_lint(
            tmp_path,
            {
                "src/repro/tidy.py": """\
                import os  # kept for doc purposes

                value = 1
                """
            },
        )
        [fix] = plan_fixes(report.findings, config)
        assert not fix.changed
        assert fix.skipped and "comment" in fix.skipped[0][1]

    def test_dry_run_via_cli_leaves_file_untouched(self, tmp_path, capsys):
        files = {
            "src/repro/tidy.py": """\
            import os

            value = 1
            """
        }
        make_tree(tmp_path, files)
        pyproject = write_pyproject(tmp_path)
        before = (tmp_path / "src/repro/tidy.py").read_text()
        code = reprolint_main(
            [
                str(tmp_path / "src"),
                "--config",
                str(pyproject),
                "--fix",
                "--dry-run",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "-import os" in out
        assert "dry run" in out
        assert (tmp_path / "src/repro/tidy.py").read_text() == before

    def test_fix_via_cli_rechecks_and_exits_clean(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "src/repro/tidy.py": """\
                import os

                value = 1
                """
            },
        )
        pyproject = write_pyproject(tmp_path)
        code = reprolint_main(
            [str(tmp_path / "src"), "--config", str(pyproject), "--fix"]
        )
        assert code == 0
        assert "import os" not in (tmp_path / "src/repro/tidy.py").read_text()


# ---------------------------------------------------------------------------
# repro CLI smoke: the --fix plumbing end to end on the real tree
# ---------------------------------------------------------------------------


class TestReproCliSmoke:
    def test_repro_lint_fix_dry_run_on_repo(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "lint",
                "src",
                "--fix",
                "--dry-run",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        # The committed tree is fix-clean; the plumbing must say so.
        assert "dry run; nothing written" in proc.stdout
