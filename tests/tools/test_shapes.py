"""Tests for the RL9xx shape/dtype domain (tools/reprolint/shapes.py),
the rules built on it (tools/reprolint/rules/arrays.py), the RL404
positive-provenance refinement, the ``--changed`` scoping helpers, and
the SARIF help metadata.

Mirrors the fixture idiom of test_reprolint.py: tiny synthetic source
trees are written under tmp_path and linted with a family-scoped
config, so every assertion names the rule and line it expects.
"""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from tools.reprolint import LintConfig, lint_paths
from tools.reprolint.cli import changed_python_files
from tools.reprolint.registry import all_rules
from tools.reprolint.reporters import (
    render_sarif,
    rule_full_description,
    rule_help_uri,
)
from tools.reprolint.shapes import (
    DIM_TOP,
    DTYPE_TOP,
    BroadcastOutcome,
    ModuleShapes,
    array_val,
    broadcast_shapes,
    dim_join,
    dims_equal_provable,
    format_shape,
    join_arrays,
    lit,
    matmul_shapes,
    parse_annotation_line,
    promote_dtypes,
    sym,
    true_divide_dtype,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_tree(root: Path, files: dict, families=("arrays",), **kwargs) -> LintConfig:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return LintConfig(root=root, enabled_families=list(families), **kwargs)


def run_lint(root: Path, files: dict, families=("arrays",), **kwargs):
    config = make_tree(root, files, families, **kwargs)
    return lint_paths([root / "src"], config), config


def findings_for(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


def analyze(source: str) -> ModuleShapes:
    import ast

    src = textwrap.dedent(source)
    return ModuleShapes(ast.parse(src), src.splitlines())


# ---------------------------------------------------------------------------
# Domain units
# ---------------------------------------------------------------------------


class TestDims:
    def test_join_equal_literals(self):
        assert dim_join(lit(3), lit(3)) == lit(3)

    def test_join_conflicting_literals_is_top(self):
        assert dim_join(lit(3), lit(4)) == DIM_TOP

    def test_join_matching_syms(self):
        assert dim_join(sym("K"), sym("K")) == sym("K")

    def test_join_mismatched_syms_is_top(self):
        assert dim_join(sym("K"), sym("D")) == DIM_TOP

    def test_provable_equality(self):
        assert dims_equal_provable(lit(3), lit(3)) is True
        assert dims_equal_provable(lit(3), lit(4)) is False
        assert dims_equal_provable(sym("K"), sym("K")) is True
        # sym-vs-lit and top are unknowable, not false
        assert dims_equal_provable(sym("K"), lit(3)) is None
        assert dims_equal_provable(DIM_TOP, lit(3)) is None

    def test_format_shape(self):
        assert format_shape((sym("K"), lit(1))) == "(K, 1)"
        assert format_shape((lit(5),)) == "(5,)"
        assert format_shape(None) == "(?rank)"


class TestBroadcast:
    def test_plain_broadcast(self):
        out = broadcast_shapes((sym("K"), lit(1)), (sym("K"), sym("D")))
        assert not out.mismatch and not out.mutual
        assert out.shape == (sym("K"), sym("D"))

    def test_scalar_broadcast(self):
        out = broadcast_shapes((sym("K"), sym("D")), ())
        assert not out.mismatch and not out.mutual
        assert out.shape == (sym("K"), sym("D"))

    def test_literal_mismatch(self):
        out = broadcast_shapes((lit(3), lit(4)), (lit(3), lit(5)))
        assert out.mismatch
        assert out.mismatch_axis == 1

    def test_mutual_rank_changing_broadcast(self):
        # (K, 1) meeting (K,) manufactures (K, K): the RL901 signal.
        out = broadcast_shapes((sym("K"), lit(1)), (sym("K"),))
        assert out.mutual and not out.mismatch
        assert out.shape == (sym("K"), sym("K"))

    def test_same_rank_is_never_mutual(self):
        out = broadcast_shapes((sym("K"), lit(1)), (sym("K"), sym("D")))
        assert not out.mutual

    def test_padding_only_is_not_mutual(self):
        # (K, D) + (D,) is the ordinary row-broadcast idiom.
        out = broadcast_shapes((sym("K"), sym("D")), (sym("D"),))
        assert not out.mutual
        assert out.shape == (sym("K"), sym("D"))


class TestMatmul:
    def test_plain_2d(self):
        out = matmul_shapes((sym("m"), sym("n")), (sym("n"), sym("p")))
        assert not out.mismatch
        assert out.shape == (sym("m"), sym("p"))

    def test_stacked(self):
        out = matmul_shapes(
            (sym("K"), sym("m"), sym("n")), (sym("K"), sym("n"), sym("p"))
        )
        assert not out.mismatch
        assert out.shape == (sym("K"), sym("m"), sym("p"))

    def test_inner_dim_literal_conflict(self):
        out = matmul_shapes((lit(2), lit(3)), (lit(4), lit(5)))
        assert out.mismatch

    def test_rank0_operand(self):
        out = matmul_shapes((), (lit(3), lit(3)))
        assert out.mismatch

    def test_vector_cases(self):
        out = matmul_shapes((sym("n"),), (sym("n"), sym("p")))
        assert not out.mismatch
        assert out.shape == (sym("p"),)


class TestDtypes:
    def test_promote_is_commutative_on_concrete(self):
        assert promote_dtypes("float64", "float32") == "float64"
        assert promote_dtypes("float32", "float64") == "float64"
        assert promote_dtypes("int64", "float32") == "float64"

    def test_weak_scalars_defer_to_array_dtype(self):
        # NEP-50 style: a python float does not widen float32 arrays.
        assert promote_dtypes("float32", "weak_float") == "float32"
        assert promote_dtypes("int64", "weak_int") == "int64"
        assert promote_dtypes("int64", "weak_float") == "float64"

    def test_top_absorbs(self):
        assert promote_dtypes("float64", DTYPE_TOP) == DTYPE_TOP

    def test_true_divide(self):
        assert true_divide_dtype("int64", "int64") == "float64"
        assert true_divide_dtype("float32", "float32") == "float32"


class TestJoinArrays:
    def test_dimensionwise_join(self):
        a = array_val((sym("K"), lit(3)), "float64")
        b = array_val((sym("K"), lit(4)), "float64")
        j = join_arrays([a, b])
        assert j.shape == (sym("K"), DIM_TOP)
        assert j.dtype == "float64"

    def test_rank_conflict_loses_shape(self):
        a = array_val((sym("K"),), "float64")
        b = array_val((sym("K"), lit(3)), "float64")
        assert join_arrays([a, b]).shape is None


class TestAnnotationParsing:
    def test_full_line(self):
        params, ret = parse_annotation_line(
            "# shape: W (K, D) float64, y (K, B) int64 -> (K, D) float64"
        )
        assert params["W"].dims == (sym("K"), sym("D"))
        assert params["W"].dtype == "float64"
        assert params["y"].dtype == "int64"
        assert ret.dims == (sym("K"), sym("D"))
        assert ret.dtype == "float64"

    def test_literal_and_unknown_dims(self):
        params, ret = parse_annotation_line("# shape: cols (B, ?, 3) -> (B,)")
        assert params["cols"].dims == (sym("B"), DIM_TOP, lit(3))
        assert ret.dims == (sym("B"),)
        assert ret.dtype == DTYPE_TOP

    def test_docstring_variant_without_hash(self):
        params, ret = parse_annotation_line("shape: a (m, n) -> (n, m)")
        assert params["a"].dims == (sym("m"), sym("n"))
        assert ret.dims == (sym("n"), sym("m"))

    def test_non_annotation_returns_none(self):
        assert parse_annotation_line("# not a shape comment") is None
        assert parse_annotation_line("W: parameter stack") is None


# ---------------------------------------------------------------------------
# Intraprocedural inference
# ---------------------------------------------------------------------------


class TestScopeInference:
    def test_allocator_and_shape_unpack(self):
        mod = analyze(
            """
            import numpy as np

            # shape: X (K, B, f) float64
            def f(X):
                K, B, f = X.shape
                G = np.zeros((K, B))
                return G
            """
        )
        scope = mod.scopes[1]
        ret = scope.cfg and [
            u for b in scope.cfg.blocks.values() for u in b.units
        ]
        import ast as _ast

        ret_stmt = next(u for u in ret if isinstance(u, _ast.Return))
        val = scope.array_of(ret_stmt.value)
        assert val.shape == (sym("K"), sym("B"))
        assert val.dtype == "float64"

    def test_widening_terminates_loop_rebinding(self):
        # Rebinding through a loop must converge (no infinite iteration)
        # and keep the consistent dims.
        mod = analyze(
            """
            import numpy as np

            # shape: W (K, D) float64
            def f(W, n):
                for _ in range(n):
                    W = W + 1.0
                return W
            """
        )
        scope = mod.scopes[1]
        import ast as _ast

        ret_stmt = next(
            u
            for b in scope.cfg.blocks.values()
            for u in b.units
            if isinstance(u, _ast.Return)
        )
        val = scope.array_of(ret_stmt.value)
        assert val is not None
        assert val.shape == (sym("K"), sym("D"))

    def test_call_site_sym_unification(self):
        # The annotated callee's return dims are substituted with the
        # caller's bindings: (K, m, n) x (K, n, p) -> (K, m, p).
        mod = analyze(
            """
            import numpy as np

            # shape: a (K, m, n) float64, b (K, n, p) float64 -> (K, m, p) float64
            def bmm(a, b):
                return a @ b

            # shape: X (J, R, C) float64, Y (J, C, S) float64
            def caller(X, Y):
                out = bmm(X, Y)
                return out
            """
        )
        scope = mod.scopes[2]
        import ast as _ast

        ret_stmt = next(
            u
            for b in scope.cfg.blocks.values()
            for u in b.units
            if isinstance(u, _ast.Return)
        )
        val = scope.array_of(ret_stmt.value)
        assert val is not None
        assert val.shape == (sym("J"), sym("R"), sym("S"))
        assert val.dtype == "float64"


# ---------------------------------------------------------------------------
# RL900 — provable shape mismatch
# ---------------------------------------------------------------------------


_RL9_FILES_OK = {
    "pyproject.toml": "[tool.reprolint]\nsrc-root = 'src'\n",
}


class TestRL900:
    def test_literal_elementwise_mismatch(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def f():
                    a = np.zeros((3, 4))
                    b = np.zeros((3, 5))
                    return a + b
                """,
            },
        )
        found = findings_for(report, "RL900")
        assert len(found) == 1
        assert found[0].line == 7

    def test_matmul_inner_dim_mismatch(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def f():
                    a = np.zeros((2, 3))
                    b = np.zeros((4, 5))
                    return a @ b
                """,
            },
        )
        assert len(findings_for(report, "RL900")) == 1

    def test_symbolic_kernel_stays_clean(self, tmp_path):
        # The repo's (K, D)-stack kernel idiom must never fire.
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: W (K, D) float64, G (K, D) float64, anchor (D,) float64
                def prox_step(W, G, anchor, eta):
                    T = W - eta * G
                    return T - anchor
                """,
            },
        )
        assert findings_for(report, "RL900") == []

    def test_broadcastable_literals_stay_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def f():
                    a = np.zeros((3, 1))
                    b = np.zeros((3, 5))
                    return a * b
                """,
            },
        )
        assert findings_for(report, "RL900") == []


# ---------------------------------------------------------------------------
# RL901 — rank-changing silent broadcast into an accumulation
# ---------------------------------------------------------------------------


class TestRL901:
    def test_kx1_meets_k_into_sum(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: w (K, 1) float64, r (K,) float64
                def f(w, r):
                    return np.sum(w * r)
                """,
            },
        )
        found = findings_for(report, "RL901")
        assert len(found) == 1
        assert found[0].line == 6

    def test_augassign_accumulation(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: w (K, 1) float64, r (K,) float64
                def f(w, r, acc):
                    acc += w * r
                    return acc
                """,
            },
        )
        assert len(findings_for(report, "RL901")) == 1

    def test_plain_expression_not_flagged(self, tmp_path):
        # Without an accumulation the blowup is visible to the caller;
        # RL901 stays quiet (RL900 has nothing provable either).
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: w (K, 1) float64, r (K,) float64
                def f(w, r):
                    return w * r
                """,
            },
        )
        assert findings_for(report, "RL901") == []

    def test_row_broadcast_idiom_not_flagged(self, tmp_path):
        # (K, D) - (D,): padding-only broadcast, the standard idiom.
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: W (K, D) float64, anchor (D,) float64
                def f(W, anchor):
                    return np.sum(W - anchor)
                """,
            },
        )
        assert findings_for(report, "RL901") == []


# ---------------------------------------------------------------------------
# RL902 — dtype drift through inferred flow
# ---------------------------------------------------------------------------


class TestRL902:
    def test_astype_through_variable(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def f(flag):
                    dt = np.float32
                    W = np.zeros((4, 4))
                    return W.astype(dt)
                """,
            },
        )
        assert len(findings_for(report, "RL902")) == 1

    def test_literal_astype_is_not_rl902(self, tmp_path):
        # A literal narrow dtype at the site is RL3xx's business.
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def f():
                    W = np.zeros((4, 4))
                    return W.astype(np.float32)
                """,
            },
        )
        assert findings_for(report, "RL902") == []

    def test_narrow_out_buffer(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def f():
                    a = np.zeros((4, 4))
                    b = np.zeros((4, 4))
                    buf = np.empty((4, 4), dtype=np.float32)
                    return np.add(a, b, out=buf)
                """,
            },
        )
        assert len(findings_for(report, "RL902")) == 1

    def test_float64_out_buffer_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def f():
                    a = np.zeros((4, 4))
                    b = np.zeros((4, 4))
                    buf = np.empty((4, 4))
                    return np.add(a, b, out=buf)
                """,
            },
        )
        assert findings_for(report, "RL902") == []


# ---------------------------------------------------------------------------
# RL903 — allocation inside a hot loop
# ---------------------------------------------------------------------------


_HOT_KW = dict(hot_path_roots=["solve_cohort", "helper"])


class TestRL903:
    def test_allocation_in_hot_loop(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def solve_cohort(shards):
                    for X in shards:
                        tmp = np.zeros(X.size)
                        X[:] = tmp
                """,
            },
            **_HOT_KW,
        )
        found = findings_for(report, "RL903")
        assert len(found) == 1
        assert found[0].line == 6

    def test_hot_closure_via_call_graph(self, tmp_path):
        # helper() is a root; callee() is hot only through the closure.
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def callee(items):
                    for it in items:
                        buf = np.empty(8)
                        it.use(buf)

                def helper(items):
                    return callee(items)
                """,
            },
            **_HOT_KW,
        )
        assert len(findings_for(report, "RL903")) == 1

    def test_cold_function_not_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def cold(items):
                    for it in items:
                        buf = np.empty(8)
                        it.use(buf)
                """,
            },
            **_HOT_KW,
        )
        assert findings_for(report, "RL903") == []

    def test_collect_results_idiom_not_flagged(self, tmp_path):
        # Allocations that escape into append/return are the point of
        # the loop, not churn.
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def solve_cohort(shards):
                    results = []
                    for X in shards:
                        results.append(np.array(X, copy=True))
                    return results

                def helper(shards):
                    out = []
                    for X in shards:
                        w = np.array(X, dtype=np.float64, copy=True)
                        out.append(make(w))
                    return out
                """,
            },
            **_HOT_KW,
        )
        assert findings_for(report, "RL903") == []

    def test_allocation_before_loop_not_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                def solve_cohort(shards, n):
                    buf = np.empty(8)
                    for _ in range(n):
                        buf[:] = 0.0
                    return buf
                """,
            },
            **_HOT_KW,
        )
        assert findings_for(report, "RL903") == []


# ---------------------------------------------------------------------------
# RL904 — annotation contract
# ---------------------------------------------------------------------------


class TestRL904:
    def test_rank_contradiction(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: X (K, B) float64 -> (K, B) float64
                def f(X):
                    K, B = X.shape
                    return np.zeros((K, B, 3))
                """,
            },
        )
        found = findings_for(report, "RL904")
        assert len(found) == 1
        assert "rank" in found[0].message

    def test_literal_dim_contradiction(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: X (K,) float64 -> (K, 3) float64
                def f(X):
                    K, = X.shape
                    return np.zeros((K, 4))
                """,
            },
        )
        assert len(findings_for(report, "RL904")) == 1

    def test_dtype_contradiction(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: n ( ) -> (4,) float64
                def f(n):
                    return np.zeros(4, dtype=np.int64)
                """,
            },
        )
        assert len(findings_for(report, "RL904")) == 1

    def test_consistent_annotation_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: W (K, D) float64, G (K, D) float64 -> (K, D) float64
                def f(W, G):
                    return W - G
                """,
            },
        )
        assert findings_for(report, "RL904") == []

    def test_symbolic_vs_unknown_never_fires(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/m.py": """
                import numpy as np

                # shape: X (N, D) -> (D,)
                def f(X):
                    return X.mean(axis=0)
                """,
            },
        )
        assert findings_for(report, "RL904") == []


# ---------------------------------------------------------------------------
# RL404 refinement regressions (positive provenance + lexical guard)
# ---------------------------------------------------------------------------


_SAFETY_KW = dict(numeric_modules=["m"])


def run_safety(tmp_path, body):
    return run_lint(
        tmp_path,
        {"src/m.py": body},
        families=("safety",),
        **_SAFETY_KW,
    )


class TestRL404Refinement:
    def test_check_positive_suppresses(self, tmp_path):
        report, _ = run_safety(
            tmp_path,
            """
            from repro.utils.validation import check_positive

            def f(x, eta):
                check_positive("eta", eta)
                return x / eta
            """,
        )
        assert findings_for(report, "RL404") == []

    def test_len_or_one_suppresses(self, tmp_path):
        report, _ = run_safety(
            tmp_path,
            """
            def f(x, items):
                n = len(items) or 1
                return x / n
            """,
        )
        assert findings_for(report, "RL404") == []

    def test_max_with_positive_floor_suppresses(self, tmp_path):
        report, _ = run_safety(
            tmp_path,
            """
            def f(x, eps):
                den = max(eps, 1e-12)
                return x / den
            """,
        )
        assert findings_for(report, "RL404") == []

    def test_zero_guard_suppresses(self, tmp_path):
        report, _ = run_safety(
            tmp_path,
            """
            def f(x, n):
                if n == 0:
                    return x
                return x / n
            """,
        )
        assert findings_for(report, "RL404") == []

    def test_le_zero_guard_suppresses(self, tmp_path):
        report, _ = run_safety(
            tmp_path,
            """
            def f(x, n):
                if n <= 0:
                    raise ValueError("n")
                return x / n
            """,
        )
        assert findings_for(report, "RL404") == []

    def test_unproven_denominator_still_fires(self, tmp_path):
        report, _ = run_safety(
            tmp_path,
            """
            def f(x, n):
                return x / n
            """,
        )
        assert len(findings_for(report, "RL404")) == 1

    def test_nonterminating_guard_still_fires(self, tmp_path):
        # The guard body falls through, so zero still reaches the div.
        report, _ = run_safety(
            tmp_path,
            """
            def f(x, n):
                if n == 0:
                    x = 0.0
                return x / n
            """,
        )
        assert len(findings_for(report, "RL404")) == 1

    def test_strict_false_check_still_fires(self, tmp_path):
        report, _ = run_safety(
            tmp_path,
            """
            from repro.utils.validation import check_positive

            def f(x, mu):
                check_positive("mu", mu, strict=False)
                return x / mu
            """,
        )
        assert len(findings_for(report, "RL404")) == 1


# ---------------------------------------------------------------------------
# --changed scoping
# ---------------------------------------------------------------------------


def _git(root, *cmd):
    subprocess.run(
        ("git",) + cmd,
        cwd=root,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(root),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


class TestChangedScoping:
    def _repo(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "a.py").write_text("import os\n")
        (tmp_path / "src" / "b.py").write_text("x = 1\n")
        _git(tmp_path, "init", "-q", "-b", "main")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "base")
        return tmp_path

    def test_changed_files_vs_ref(self, tmp_path):
        root = self._repo(tmp_path)
        (root / "src" / "b.py").write_text("x = 2\n")
        (root / "src" / "c.py").write_text("y = 3\n")  # untracked
        changed = changed_python_files(root, "main")
        names = {p.name for p in changed}
        assert names == {"b.py", "c.py"}

    def test_no_changes(self, tmp_path):
        root = self._repo(tmp_path)
        assert changed_python_files(root, "main") == []

    def test_bad_ref_returns_none(self, tmp_path):
        root = self._repo(tmp_path)
        assert changed_python_files(root, "no-such-ref") is None

    def test_changed_only_scopes_rule_phase(self, tmp_path):
        # Two files with unused imports; scoping to one reports one but
        # still parses/indexes both (files_checked counts scoped only).
        config = make_tree(
            tmp_path,
            {
                "src/a.py": "import os\n",
                "src/b.py": "import sys\n",
            },
            families=("hygiene",),
        )
        full = lint_paths([tmp_path / "src"], config)
        scoped = lint_paths(
            [tmp_path / "src"],
            config,
            changed_only=[tmp_path / "src" / "a.py"],
        )
        assert len(findings_for(full, "RL704")) == 2
        assert len(findings_for(scoped, "RL704")) == 1
        assert scoped.files_checked == 1
        assert scoped.stale_baseline == {}


# ---------------------------------------------------------------------------
# SARIF help metadata
# ---------------------------------------------------------------------------


class TestSarifHelp:
    def test_every_rule_has_help_metadata(self, tmp_path):
        report, _ = run_lint(tmp_path, {"src/m.py": "x = 1\n"})
        log = json.loads(render_sarif(report))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} >= {f"RL90{i}" for i in range(5)}
        for r in rules:
            assert r["helpUri"].startswith("docs/LINTING.md#"), r["id"]
            assert r["fullDescription"]["text"], r["id"]

    def test_anchors_match_linting_doc_headings(self):
        # Every helpUri anchor must resolve to a real heading in
        # docs/LINTING.md under GitHub's slug rules.
        import re

        doc = (REPO_ROOT / "docs" / "LINTING.md").read_text(encoding="utf-8")
        anchors = set()
        for line in doc.splitlines():
            if line.startswith("#"):
                text = line.lstrip("#").strip().lower()
                slug = re.sub(r"[^\w\s-]", "", text).replace(" ", "-")
                anchors.add(slug)
        for cls in all_rules():
            uri = rule_help_uri(cls)
            assert "#" in uri, cls.rule_id
            assert uri.split("#", 1)[1] in anchors, (
                f"{cls.rule_id}: {uri} has no matching docs/LINTING.md heading"
            )

    def test_full_description_prefers_docstring(self):
        from tools.reprolint.rules.arrays import ShapeMismatchRule

        text = rule_full_description(ShapeMismatchRule)
        assert "RL900" in text
        assert "\n" not in text
