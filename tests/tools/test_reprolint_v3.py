"""reprolint v3: the RL8xx concurrency family — lock discipline
(RL800), RNG escape into executor tasks (RL801), SharedMemory release
paths (RL802), escaped-array mutation (RL803), threading.local reads in
submitted callables (RL804), unordered aggregation (RL805) — plus the
submission edges on the project index and ``--jobs`` parallel analysis.
"""

import textwrap
from pathlib import Path

from tools.reprolint.config import LintConfig
from tools.reprolint.engine import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_tree(root: Path, files: dict) -> LintConfig:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return LintConfig(root=root)


def run_lint(root: Path, files: dict, **kwargs):
    config = make_tree(root, files)
    return lint_paths([root / "src"], config, **kwargs), config


def rule_ids(report):
    return [f.rule_id for f in report.findings]


def findings_for(report, rule_id):
    return [f for f in report.findings if f.rule_id == rule_id]


# ---------------------------------------------------------------------------
# RL800 — mixed lock discipline
# ---------------------------------------------------------------------------


class TestLockDiscipline:
    def test_mixed_guarded_unguarded_write_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/pool.py": """\
                import threading


                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def bump(self):
                        with self._lock:
                            self.count += 1

                    def reset(self):
                        self.count = 0
                """
            },
        )
        [finding] = findings_for(report, "RL800")
        assert finding.line == 14
        assert "self.count" in finding.message
        assert "self._lock" in finding.message
        assert "Pool.bump" in finding.message

    def test_all_writes_guarded_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/pool.py": """\
                import threading


                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def bump(self):
                        with self._lock:
                            self.count += 1

                    def reset(self):
                        with self._lock:
                            self.count = 0
                """
            },
        )
        assert findings_for(report, "RL800") == []

    def test_init_writes_exempt(self, tmp_path):
        # Construction happens-before publication: an unguarded write in
        # __init__ must not make every guarded write look "mixed".
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/pool.py": """\
                import threading


                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.items = []

                    def add(self, x):
                        with self._lock:
                            self.items.append(x)
                """
            },
        )
        assert findings_for(report, "RL800") == []

    def test_mutator_method_counts_as_write(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/pool.py": """\
                import threading


                class Pool:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.items = []

                    def add(self, x):
                        with self._lock:
                            self.items.append(x)

                    def drop(self):
                        self.items.clear()
                """
            },
        )
        [finding] = findings_for(report, "RL800")
        assert "self.items" in finding.message

    def test_unlocked_class_not_flagged(self, tmp_path):
        # No lock anywhere: nothing to be inconsistent with.
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/pool.py": """\
                class Pool:
                    def __init__(self):
                        self.count = 0

                    def bump(self):
                        self.count += 1
                """
            },
        )
        assert findings_for(report, "RL800") == []


# ---------------------------------------------------------------------------
# RL801 — RNG stream escaping into multiple tasks
# ---------------------------------------------------------------------------


class TestRngCapture:
    def test_one_stream_two_submissions_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/run.py": """\
                from repro.utils.rng import derive_generator


                def launch(pool, work):
                    rng = derive_generator(7, 0, 0)
                    a = pool.submit(work, rng)
                    b = pool.submit(work, rng)
                    return a, b
                """
            },
        )
        [finding] = findings_for(report, "RL801")
        assert "rng" in finding.message
        assert "derive_generator" in finding.message

    def test_stream_hoisted_above_submission_loop_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/run.py": """\
                from repro.utils.rng import derive_generator


                def launch(pool, work, n):
                    rng = derive_generator(7, 0, 0)
                    futures = []
                    for i in range(n):
                        futures.append(pool.submit(work, rng))
                    return futures
                """
            },
        )
        [finding] = findings_for(report, "RL801")
        assert "loop" in finding.message

    def test_per_task_stream_in_loop_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/run.py": """\
                from repro.utils.rng import derive_generator


                def launch(pool, work, n, r):
                    futures = []
                    for i in range(n):
                        rng = derive_generator(7, i, r)
                        futures.append(pool.submit(work, rng))
                    return futures
                """
            },
        )
        assert findings_for(report, "RL801") == []

    def test_iterating_spawned_streams_clean(self, tmp_path):
        # The canonical pattern: one pre-spawned stream per task, bound
        # by the loop target.  The spawn call sits outside the loop but
        # each iteration rebinds the name to a different generator.
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/run.py": """\
                from repro.utils.rng import spawn_generators


                def launch(pool, work, n):
                    streams = spawn_generators(7, n)
                    return [pool.submit(work, g) for g in streams]


                def launch_loop(pool, work, n):
                    streams = spawn_generators(7, n)
                    futures = []
                    for g in streams:
                        futures.append(pool.submit(work, g))
                    return futures
                """
            },
        )
        assert findings_for(report, "RL801") == []

    def test_reassigned_stream_between_submissions_clean(self, tmp_path):
        # Distinct generators reused under one name are distinct objects.
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/run.py": """\
                from repro.utils.rng import derive_generator


                def launch(pool, work):
                    rng = derive_generator(7, 0, 0)
                    a = pool.submit(work, rng)
                    rng = derive_generator(7, 1, 0)
                    b = pool.submit(work, rng)
                    return a, b
                """
            },
        )
        assert findings_for(report, "RL801") == []


# ---------------------------------------------------------------------------
# RL802 — SharedMemory release on every path
# ---------------------------------------------------------------------------


class TestSharedMemoryRelease:
    def test_early_return_path_leaks(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/backend/seg.py": """\
                from multiprocessing import shared_memory


                def make(size, skip):
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    if skip:
                        return None
                    shm.close()
                    shm.unlink()
                    return True
                """
            },
        )
        [finding] = findings_for(report, "RL802")
        assert finding.line == 5
        assert "shm" in finding.message

    def test_exception_path_leaks(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/backend/seg.py": """\
                from multiprocessing import shared_memory


                def make(size, fill):
                    try:
                        shm = shared_memory.SharedMemory(create=True, size=size)
                        fill(shm.buf)
                        shm.close()
                    except ValueError:
                        return None
                    return True
                """
            },
        )
        [finding] = findings_for(report, "RL802")
        assert "exception" in finding.message or "path" in finding.message

    def test_try_finally_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/backend/seg.py": """\
                from multiprocessing import shared_memory


                def make(size, fill):
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    try:
                        fill(shm.buf)
                    finally:
                        shm.close()
                        shm.unlink()
                """
            },
        )
        assert findings_for(report, "RL802") == []

    def test_ownership_transfer_clean(self, tmp_path):
        # Storing the handle (or returning it) hands ownership to the
        # caller/container; the scope is no longer responsible.
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/backend/seg.py": """\
                from multiprocessing import shared_memory


                class Arena:
                    def put(self, size):
                        shm = shared_memory.SharedMemory(create=True, size=size)
                        self._segments[shm.name] = shm
                        return shm.name


                def attach(name):
                    shm = shared_memory.SharedMemory(name=name)
                    return shm
                """
            },
        )
        assert findings_for(report, "RL802") == []

    def test_straight_line_close_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/backend/seg.py": """\
                from multiprocessing import shared_memory


                def probe(name):
                    shm = shared_memory.SharedMemory(name=name)
                    n = shm.size
                    shm.close()
                    return n
                """
            },
        )
        assert findings_for(report, "RL802") == []


# ---------------------------------------------------------------------------
# RL803 — in-place mutation of executor-escaped values
# ---------------------------------------------------------------------------


class TestEscapedMutation:
    def test_mutation_after_submission_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/scratch.py": """\
                import numpy as np


                def launch(pool, work, buf):
                    fut = pool.submit(work, buf)
                    buf += 1.0
                    return fut
                """
            },
        )
        [finding] = findings_for(report, "RL803")
        assert finding.line == 6
        assert "buf" in finding.message

    def test_mutation_inside_submission_loop_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/scratch.py": """\
                def launch(pool, work, buf, n):
                    futures = []
                    for i in range(n):
                        buf[i] = float(i)
                        futures.append(pool.submit(work, buf))
                    return futures
                """
            },
        )
        assert len(findings_for(report, "RL803")) == 1

    def test_mutation_before_submission_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/scratch.py": """\
                def launch(pool, work, buf):
                    buf += 1.0
                    buf.fill(0.0)
                    return pool.submit(work, buf)
                """
            },
        )
        assert findings_for(report, "RL803") == []

    def test_out_kwarg_counts_as_mutation(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/scratch.py": """\
                import numpy as np


                def launch(pool, work, buf, delta):
                    fut = pool.submit(work, buf)
                    np.add(buf, delta, out=buf)
                    return fut
                """
            },
        )
        assert len(findings_for(report, "RL803")) >= 1


# ---------------------------------------------------------------------------
# RL804 — threading.local read from a submitted callable
# ---------------------------------------------------------------------------


class TestThreadLocalEscape:
    def test_submitted_function_reading_threadlocal_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/obs/ctx.py": """\
                import threading


                class _Ctx(threading.local):
                    def __init__(self):
                        self.items = []


                _ctx = _Ctx()


                def task(x):
                    return len(_ctx.items) + x


                def launch(pool, n):
                    futures = []
                    for i in range(n):
                        futures.append(pool.submit(task, i))
                    return futures
                """
            },
        )
        [finding] = findings_for(report, "RL804")
        assert "task" in finding.message
        assert "threading.local" in finding.message

    def test_unsubmitted_reader_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/obs/ctx.py": """\
                import threading


                class _Ctx(threading.local):
                    def __init__(self):
                        self.items = []


                _ctx = _Ctx()


                def current():
                    return _ctx.items[-1] if _ctx.items else None


                def launch(pool, work, n):
                    return [pool.submit(work, i) for i in range(n)]
                """
            },
        )
        assert findings_for(report, "RL804") == []

    def test_cross_module_submission_flagged(self, tmp_path):
        # The reader and the submission live in different modules; the
        # project index's submission edges connect them.
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/obs/ctx.py": """\
                import threading


                class _Ctx(threading.local):
                    def __init__(self):
                        self.items = []


                _ctx = _Ctx()


                def task(x):
                    return len(_ctx.items) + x
                """,
                "src/repro/fl/run.py": """\
                from repro.obs.ctx import task


                def launch(pool, n):
                    return [pool.submit(task, i) for i in range(n)]
                """,
            },
        )
        [finding] = findings_for(report, "RL804")
        assert finding.path.endswith("ctx.py")


# ---------------------------------------------------------------------------
# RL805 — unordered iteration feeding aggregation
# ---------------------------------------------------------------------------


class TestUnorderedAggregation:
    def test_loop_over_set_accumulating_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/agg.py": """\
                def total(values):
                    out = 0.0
                    for v in set(values):
                        out += v
                    return out
                """
            },
        )
        [finding] = findings_for(report, "RL805")
        assert finding.line == 3

    def test_sum_over_set_comprehension_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/agg.py": """\
                def total(values):
                    uniq = {v * 2.0 for v in values}
                    return sum(x for x in uniq)
                """
            },
        )
        assert len(findings_for(report, "RL805")) == 1

    def test_sorted_set_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/agg.py": """\
                def total(values):
                    out = 0.0
                    for v in sorted(set(values)):
                        out += v
                    return out
                """
            },
        )
        assert findings_for(report, "RL805") == []

    def test_non_aggregating_set_use_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/agg.py": """\
                def distinct(values):
                    return len(set(values))


                def collect(values):
                    seen = set()
                    for v in values:
                        seen.add(v)
                    return seen
                """
            },
        )
        assert findings_for(report, "RL805") == []

    def test_list_iteration_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/agg.py": """\
                def total(values):
                    out = 0.0
                    for v in list(values):
                        out += v
                    return out
                """
            },
        )
        assert findings_for(report, "RL805") == []


# ---------------------------------------------------------------------------
# Submission edges on the project index
# ---------------------------------------------------------------------------


class TestSubmissionEdges:
    def test_edges_resolve_local_and_imported_callables(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/work.py": """\
                def solve(x):
                    return x * 2
                """,
                "src/repro/fl/run.py": """\
                from repro.fl.work import solve


                def local(x):
                    return x


                def launch(pool, n):
                    a = [pool.submit(solve, i) for i in range(n)]
                    b = [pool.submit(local, i) for i in range(n)]
                    return a, b
                """,
            },
        )
        index = report.index
        edges = index.submission_edges()
        callees = {e.callee for e in edges}
        assert "repro.fl.work.solve" in callees
        assert "repro.fl.run.local" in callees
        submitted = index.submitted_callables()
        assert "solve" in submitted and "local" in submitted
        assert "repro.fl.work.solve" in submitted

    def test_bound_method_submission_recorded_by_bare_name(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/run.py": """\
                def launch(pool, clients, w):
                    return [pool.submit(c.local_update, w) for c in clients]
                """,
            },
        )
        assert "local_update" in report.index.submitted_callables()


# ---------------------------------------------------------------------------
# --jobs: parallel per-file analysis is order-identical to serial
# ---------------------------------------------------------------------------


class TestParallelAnalysis:
    FILES = {
        f"src/repro/fl/mod_{i}.py": f"""\
        import numpy as np

        rng_{i} = np.random.default_rng({i})
        """
        for i in range(6)
    }

    def test_parallel_report_matches_serial(self, tmp_path):
        serial, _ = run_lint(tmp_path, self.FILES)
        config = LintConfig(root=tmp_path)
        parallel = lint_paths([tmp_path / "src"], config, jobs=4)
        assert [
            (f.path, f.line, f.rule_id) for f in serial.findings
        ] == [(f.path, f.line, f.rule_id) for f in parallel.findings]
        assert len(serial.findings) >= 6

    def test_jobs_one_is_default(self, tmp_path):
        report, _ = run_lint(tmp_path, self.FILES, jobs=1)
        assert len(report.findings) >= 6
