"""Tests for the reprolint static-analysis suite (tools/reprolint).

Two halves:

* fixture tests — tiny synthetic source trees violating each of the
  five rule families, asserting rule IDs, file:line locations, JSON
  output, inline suppressions, and the baseline ratchet;
* the tier-1 **gate** (:class:`TestSrcGate`) — runs the real
  configuration over the real ``src/`` tree and fails the suite on any
  gating finding, so invariant violations break ``pytest``, not just CI.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.reprolint import LintConfig, Severity, lint_paths, load_config
from tools.reprolint.baseline import (
    load_baseline,
    save_baseline,
    split_by_baseline,
)
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.config import _parse_minimal_toml
from tools.reprolint.engine import module_name_for
from tools.reprolint.registry import all_rules
from tools.reprolint.suppressions import disabled_rules_on_line

REPO_ROOT = Path(__file__).resolve().parents[2]


#: This file exercises the v1 per-file rule families in isolation; the
#: flow/whole-program families have their own fixtures in
#: test_reprolint_v2.py and would add noise findings (e.g. RL704 on the
#: deliberately minimal imports) to the assertions below.
V1_FAMILIES = ["layering", "rng", "dtype", "safety", "theory"]


def make_tree(root: Path, files: dict) -> LintConfig:
    """Write ``{relpath: source}`` under ``root`` and return a config."""
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return LintConfig(root=root, enabled_families=list(V1_FAMILIES))


def run_lint(root: Path, files: dict):
    config = make_tree(root, files)
    return lint_paths([root / "src"], config), config


def rule_ids(report):
    return [f.rule_id for f in report.findings]


# ---------------------------------------------------------------------------
# Framework basics
# ---------------------------------------------------------------------------


class TestFramework:
    def test_registry_has_all_nine_families(self):
        families = {cls.family for cls in all_rules()}
        assert families == {
            "layering",
            "rng",
            "dtype",
            "safety",
            "theory",
            "provenance",
            "hygiene",
            "concurrency",
            "arrays",
        }

    def test_rule_ids_unique_and_documented(self):
        rules = all_rules()
        ids = [cls.rule_id for cls in rules]
        assert len(ids) == len(set(ids))
        for cls in rules:
            assert cls.description, f"{cls.rule_id} lacks a description"

    def test_module_name_derivation(self, tmp_path):
        config = make_tree(tmp_path, {"src/repro/core/x.py": "pass\n"})
        assert module_name_for(tmp_path / "src/repro/core/x.py", config) == (
            "repro.core.x"
        )
        assert module_name_for(tmp_path / "src/repro/core/x.py", config) is not None
        # __init__ maps to the package, non-src files map to None
        (tmp_path / "src/repro/__init__.py").write_text("")
        assert module_name_for(tmp_path / "src/repro/__init__.py", config) == "repro"
        (tmp_path / "other.py").write_text("")
        assert module_name_for(tmp_path / "other.py", config) is None

    def test_syntax_error_reported_not_raised(self, tmp_path):
        report, _ = run_lint(tmp_path, {"src/repro/bad.py": "def broken(:\n"})
        assert rule_ids(report) == ["RL000"]
        assert report.exit_code == 1


# ---------------------------------------------------------------------------
# RL1xx layering
# ---------------------------------------------------------------------------


class TestLayeringRules:
    def test_upward_import_flagged_with_location(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/core/bad.py": """\
                '''Doc.'''
                from repro.fl.server import FederatedServer
                """
            },
        )
        assert rule_ids(report) == ["RL100"]
        f = report.findings[0]
        assert f.path == "src/repro/core/bad.py"
        assert f.line == 2
        assert "repro.fl.server" in f.message
        assert f.severity is Severity.ERROR

    def test_downward_and_same_layer_imports_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/ok.py": """\
                from repro.core.proximal import QuadraticProx
                from repro.utils.rng import as_generator
                from repro.fl.history import TrainingHistory
                import numpy as np
                """
            },
        )
        assert rule_ids(report) == []

    def test_relative_upward_import_resolved(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/core/local/bad.py": """\
                from ...fl import server
                """
            },
        )
        assert rule_ids(report) == ["RL100"]

    def test_unmapped_module_defaults_to_top_layer(self, tmp_path):
        # Importing an unclassified repro submodule flags until it is
        # added to the layer map (silence is opt-in).
        report, _ = run_lint(
            tmp_path,
            {"src/repro/core/bad.py": "from repro.newthing import x\n"},
        )
        assert rule_ids(report) == ["RL100"]

    def test_wildcard_import_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {"src/repro/fl/agg.py": "from repro.utils.rng import *\n"},
        )
        assert rule_ids(report) == ["RL101"]


# ---------------------------------------------------------------------------
# RL2xx RNG discipline
# ---------------------------------------------------------------------------


class TestRngRules:
    def test_global_seed_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/datasets/bad.py": """\
                import numpy as np
                np.random.seed(0)
                """
            },
        )
        assert rule_ids(report) == ["RL200"]
        assert report.findings[0].line == 2

    def test_randomstate_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/datasets/bad.py": """\
                import numpy as np
                rng = np.random.RandomState(7)
                """
            },
        )
        assert rule_ids(report) == ["RL201"]

    def test_module_level_draws_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/datasets/bad.py": """\
                import numpy as np
                x = np.random.rand(3)
                y = np.random.choice([1, 2])
                """
            },
        )
        assert rule_ids(report) == ["RL202", "RL202"]

    def test_direct_from_import_draw_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/datasets/bad.py": """\
                from numpy.random import randint
                n = randint(10)
                """
            },
        )
        assert rule_ids(report) == ["RL202"]

    def test_generator_api_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/datasets/good.py": """\
                import numpy as np
                rng = np.random.default_rng(0)
                ss = np.random.SeedSequence(1)
                x = rng.normal(size=3)
                """
            },
        )
        assert rule_ids(report) == []

    def test_files_outside_src_not_in_scope(self, tmp_path):
        config = make_tree(
            tmp_path, {"scripts/demo.py": "import numpy as np\nnp.random.seed(0)\n"}
        )
        report = lint_paths([tmp_path / "scripts"], config)
        assert rule_ids(report) == []


# ---------------------------------------------------------------------------
# RL3xx dtype discipline
# ---------------------------------------------------------------------------


class TestDtypeRules:
    def test_narrow_astype_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/nn/bad.py": """\
                import numpy as np
                def f(x):
                    return x.astype(np.float32)
                """
            },
        )
        assert rule_ids(report) == ["RL300"]
        assert report.findings[0].line == 3

    def test_narrow_astype_string_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {"src/repro/nn/bad.py": "def f(x):\n    return x.astype('float16')\n"},
        )
        assert rule_ids(report) == ["RL300"]

    def test_narrow_creation_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/nn/bad.py": """\
                import numpy as np
                w = np.zeros((3, 3), dtype=np.float32)
                """
            },
        )
        assert rule_ids(report) == ["RL301"]

    def test_float64_clean_and_scope_respected(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/nn/good.py": """\
                import numpy as np
                w = np.zeros((3, 3), dtype=np.float64)
                idx = np.zeros(4, dtype=np.int64)
                """,
                # float32 outside the dtype-modules scope is not flagged
                "src/repro/fl/elsewhere.py": """\
                import numpy as np
                buf = np.zeros(8, dtype=np.float32)
                """,
            },
        )
        assert rule_ids(report) == []


# ---------------------------------------------------------------------------
# RL4xx safety
# ---------------------------------------------------------------------------


class TestSafetyRules:
    def test_bare_except_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/bad.py": """\
                def f():
                    try:
                        return 1
                    except:
                        return 0
                """
            },
        )
        assert rule_ids(report) == ["RL400"]
        assert report.findings[0].line == 4

    def test_mutable_default_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {"src/repro/fl/bad.py": "def f(x, acc=[]):\n    return acc\n"},
        )
        assert rule_ids(report) == ["RL401"]

    def test_unclamped_log_flagged_in_numeric_scope(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/core/proximal.py": """\
                import numpy as np
                def f(p):
                    return np.log(p)
                """
            },
        )
        assert rule_ids(report) == ["RL402"]
        assert report.findings[0].severity is Severity.WARNING

    def test_clamped_log_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/core/proximal.py": """\
                import numpy as np
                def f(p, eps=1e-12):
                    a = np.log(np.maximum(p, 1e-12))
                    b = np.log(p + 1e-12)
                    c = np.log(np.clip(p, 1e-12, 1.0))
                    return a + b + c
                """
            },
        )
        assert rule_ids(report) == []

    def test_exp_and_division_are_advisory_only(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/core/proximal.py": """\
                import numpy as np
                def f(x, n):
                    return np.exp(x) / n
                """
            },
        )
        assert sorted(rule_ids(report)) == ["RL403", "RL404"]
        assert all(f.severity is Severity.INFO for f in report.findings)
        assert report.exit_code == 0  # info findings never gate

    def test_log_out_of_scope_module_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {"src/repro/fl/bad.py": "import numpy as np\ny = np.log(3.0)\n"},
        )
        assert rule_ids(report) == []


# ---------------------------------------------------------------------------
# RL5xx theory contracts
# ---------------------------------------------------------------------------


class TestTheoryRules:
    def test_beta_at_most_three_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/fl/bad.py": """\
                def run(cfg_cls):
                    return cfg_cls(beta=2.5, mu=0.1)
                """
            },
        )
        assert rule_ids(report) == ["RL500"]
        assert "beta=2.5" in report.findings[0].message

    def test_beta_grid_with_infeasible_entry_flagged(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {"src/repro/fl/bad.py": "space = SearchSpace(beta=(3.0, 5.0))\n"},
        )
        assert rule_ids(report) == ["RL500"]

    def test_tau_above_sarah_bound_flagged(self, tmp_path):
        # beta = 5: SARAH cap (13) is (5*25 - 20)/8 = 13.125 < 100.
        report, _ = run_lint(
            tmp_path,
            {"src/repro/fl/bad.py": "cfg = Config(beta=5.0, num_local_steps=100)\n"},
        )
        assert rule_ids(report) == ["RL501"]
        assert report.findings[0].extra["estimator"] == "sarah"

    def test_tau_within_sarah_bound_clean(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {"src/repro/fl/good.py": "cfg = Config(beta=5.0, num_local_steps=10)\n"},
        )
        assert rule_ids(report) == []

    def test_svrg_bound_is_tighter(self, tmp_path):
        # beta = 10, tau = 20: fine for SARAH (cap 57.5) but the
        # self-consistent SVRG cap (14)/(65) is 0 at beta = 10.
        files = {
            "src/repro/fl/svrg.py": (
                "cfg = Config(algorithm='fedproxvr-svrg', beta=10.0, tau=20)\n"
            ),
            "src/repro/fl/sarah.py": (
                "cfg = Config(algorithm='fedproxvr-sarah', beta=10.0, tau=20)\n"
            ),
        }
        report, _ = run_lint(tmp_path, files)
        assert rule_ids(report) == ["RL501"]
        assert report.findings[0].path.endswith("svrg.py")
        assert report.findings[0].extra["estimator"] == "svrg"

    def test_fallback_bounds_match_repro_core_theory(self, monkeypatch):
        # The linter prefers repro.core.theory when importable; its
        # closed-form fallbacks (used when src/ is not on the path) must
        # agree with that single source of truth.
        theory = pytest.importorskip("repro.core.theory")
        from tools.reprolint.rules import theory as theory_rules

        monkeypatch.setattr(theory_rules, "_theory_module", lambda: None)
        for beta in (4.0, 7.0, 10.0, 15.0, 20.0):
            assert theory_rules._tau_upper_bound(beta, "sarah") == pytest.approx(
                theory.tau_upper_bound_sarah(beta)
            )
            # The fallback clamps the self-consistent SVRG bound at 0
            # (an integer iteration count); theory reports the raw,
            # possibly negative, eq. (14) value when infeasible.
            assert theory_rules._tau_upper_bound(beta, "svrg") == pytest.approx(
                max(0.0, theory.tau_upper_bound_svrg(beta))
            )


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_parse_disable_comment(self):
        assert disabled_rules_on_line("x = 1  # reprolint: disable=RL200") == {"RL200"}
        assert disabled_rules_on_line("x  # reprolint: disable=RL200, RL500") == {
            "RL200",
            "RL500",
        }
        assert disabled_rules_on_line("x  # reprolint: disable=all") == {"all"}
        assert disabled_rules_on_line("x = 1  # a normal comment") == set()

    def test_inline_suppression_silences_named_rule(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/datasets/bad.py": """\
                import numpy as np
                np.random.seed(0)  # reprolint: disable=RL200
                """
            },
        )
        assert rule_ids(report) == []
        assert report.suppressed_count == 1

    def test_suppression_of_other_rule_does_not_silence(self, tmp_path):
        report, _ = run_lint(
            tmp_path,
            {
                "src/repro/datasets/bad.py": """\
                import numpy as np
                np.random.seed(0)  # reprolint: disable=RL999
                """
            },
        )
        assert rule_ids(report) == ["RL200"]


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------


class TestBaseline:
    FILES = {
        "src/repro/datasets/legacy.py": """\
        import numpy as np
        np.random.seed(0)
        """
    }

    def test_baselined_finding_does_not_gate(self, tmp_path):
        config = make_tree(tmp_path, self.FILES)
        baseline_path = tmp_path / "baseline.json"
        first = lint_paths([tmp_path / "src"], config, baseline_path=baseline_path)
        assert first.exit_code == 1
        save_baseline(baseline_path, first.findings)

        second = lint_paths([tmp_path / "src"], config, baseline_path=baseline_path)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.exit_code == 0

    def test_new_identical_violation_still_fails(self, tmp_path):
        config = make_tree(tmp_path, self.FILES)
        baseline_path = tmp_path / "baseline.json"
        first = lint_paths([tmp_path / "src"], config, baseline_path=baseline_path)
        save_baseline(baseline_path, first.findings)

        # Add a second, textually identical violation: the fingerprint
        # count (1) absorbs only the first occurrence.
        legacy = tmp_path / "src/repro/datasets/legacy.py"
        legacy.write_text(legacy.read_text() + "np.random.seed(0)\n")
        report = lint_paths([tmp_path / "src"], config, baseline_path=baseline_path)
        assert len(report.baselined) == 1
        assert rule_ids(report) == ["RL200"]
        assert report.exit_code == 1

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        config = make_tree(tmp_path, self.FILES)
        baseline_path = tmp_path / "baseline.json"
        first = lint_paths([tmp_path / "src"], config, baseline_path=baseline_path)
        save_baseline(baseline_path, first.findings)

        # Prepend unrelated lines: the violation moves but stays baselined.
        legacy = tmp_path / "src/repro/datasets/legacy.py"
        legacy.write_text("import os\n\n" + legacy.read_text())
        report = lint_paths([tmp_path / "src"], config, baseline_path=baseline_path)
        assert report.findings == []
        assert len(report.baselined) == 1

    def test_split_respects_counts(self, tmp_path):
        config = make_tree(tmp_path, self.FILES)
        report = lint_paths([tmp_path / "src"], config,
                            baseline_path=tmp_path / "nonexistent.json")
        [finding] = report.findings
        new, matched = split_by_baseline([finding, finding],
                                         {finding.fingerprint(): 1})
        assert len(new) == 1 and len(matched) == 1

    def test_committed_baseline_is_empty(self):
        entries = load_baseline(REPO_ROOT / "tools/reprolint/baseline.json")
        assert entries == {}


# ---------------------------------------------------------------------------
# CLI, reporters, config
# ---------------------------------------------------------------------------


def write_pyproject(root: Path) -> Path:
    (root / "pyproject.toml").write_text(
        textwrap.dedent(
            """\
            [tool.reprolint]
            src-root = "src"
            baseline = "baseline.json"
            families = ["layering", "rng", "dtype", "safety", "theory"]
            """
        )
    )
    return root / "pyproject.toml"


class TestCli:
    FILES = {
        "src/repro/core/bad.py": """\
        import numpy as np
        from repro.fl.server import FederatedServer
        np.random.seed(3)
        """
    }

    def test_nonzero_exit_and_json_findings(self, tmp_path, capsys):
        make_tree(tmp_path, self.FILES)
        pyproject = write_pyproject(tmp_path)
        code = reprolint_main(
            [str(tmp_path / "src"), "--config", str(pyproject), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"RL100", "RL200"}
        for f in payload["findings"]:
            assert f["path"] == "src/repro/core/bad.py"
            assert f["line"] in (2, 3)
            assert f["severity"] == "error"
        assert payload["exit_code"] == 1

    def test_text_format_has_locations(self, tmp_path, capsys):
        make_tree(tmp_path, self.FILES)
        pyproject = write_pyproject(tmp_path)
        code = reprolint_main([str(tmp_path / "src"), "--config", str(pyproject)])
        out = capsys.readouterr().out
        assert code == 1
        assert "src/repro/core/bad.py:2:0: RL100 error:" in out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        make_tree(tmp_path, self.FILES)
        pyproject = write_pyproject(tmp_path)
        argv = [str(tmp_path / "src"), "--config", str(pyproject)]
        assert reprolint_main(argv + ["--update-baseline"]) == 0
        assert (tmp_path / "baseline.json").is_file()
        capsys.readouterr()
        assert reprolint_main(argv) == 0

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        pyproject = write_pyproject(tmp_path)
        code = reprolint_main(
            [str(tmp_path / "nope"), "--config", str(pyproject)]
        )
        assert code == 2

    def test_module_invocation_on_fixtures(self, tmp_path):
        """End-to-end: ``python -m tools.reprolint`` on violating fixtures."""
        make_tree(tmp_path, self.FILES)
        write_pyproject(tmp_path)
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.reprolint",
                str(tmp_path / "src"),
                "--config",
                str(tmp_path / "pyproject.toml"),
                "--format",
                "json",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert {f["rule"] for f in payload["findings"]} == {"RL100", "RL200"}


class TestConfig:
    def test_minimal_toml_fallback_parser(self):
        data = _parse_minimal_toml(
            textwrap.dedent(
                """\
                # comment
                [tool.reprolint]
                src-root = "src"
                families = ["layering", "rng"]
                [tool.reprolint.layers]
                "repro.core" = 2
                "repro.fl" = 3
                """
            )
        )
        section = data["tool"]["reprolint"]
        assert section["src-root"] == "src"
        assert section["families"] == ["layering", "rng"]
        assert section["layers"] == {"repro.core": 2, "repro.fl": 3}

    def test_repo_pyproject_roundtrip(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert config.root == REPO_ROOT
        assert config.layers["repro.fl"] == 3
        assert config.layers["repro.core"] == 2
        assert set(config.enabled_families) == {
            "layering", "rng", "dtype", "safety", "theory",
            "provenance", "hygiene", "concurrency", "arrays",
        }
        assert config.layer_of("repro.core.local.proxvr") == 2
        assert config.layer_of("repro.unmapped_new_module") == 99
        assert config.layer_of("numpy.random") is None

    def test_obs_v2_modules_pinned_at_layer_zero(self):
        # The ledger/monitor/diff modules must stay stdlib-only at the
        # bottom of the DAG: the Theorem-1 monitor deliberately
        # re-implements core.theory's factor instead of importing it.
        config = load_config(REPO_ROOT / "pyproject.toml")
        for module in (
            "repro.obs.ledger",
            "repro.obs.monitors",
            "repro.obs.diff",
        ):
            assert config.layers[module] == 0
            assert config.layer_of(module) == 0

    def test_disabled_family_skips_rules(self, tmp_path):
        config = make_tree(
            tmp_path, {"src/repro/core/bad.py": "from repro.fl import server\n"}
        )
        config.enabled_families = ["rng"]
        report = lint_paths([tmp_path / "src"], config)
        assert report.findings == []

    def test_severity_override(self, tmp_path):
        config = make_tree(
            tmp_path,
            {"src/repro/datasets/bad.py": "import numpy as np\nnp.random.seed(0)\n"},
        )
        config.severity_overrides = {"RL200": Severity.INFO}
        report = lint_paths([tmp_path / "src"], config)
        assert rule_ids(report) == ["RL200"]
        assert report.exit_code == 0


# ---------------------------------------------------------------------------
# The tier-1 gate: the real src/ tree must satisfy every invariant
# ---------------------------------------------------------------------------


class TestSrcGate:
    @pytest.fixture(scope="class")
    def report(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        return lint_paths([REPO_ROOT / "src"], config)

    def test_src_has_no_gating_findings(self, report):
        gating = report.gating
        details = "\n".join(
            f"  {f.location()}: {f.rule_id} {f.severity.value}: {f.message}"
            for f in gating
        )
        assert not gating, (
            "reprolint found new violations in src/ "
            "(fix them, suppress inline with justification, or — for "
            f"pre-existing debt — baseline them):\n{details}"
        )
        assert report.exit_code == 0

    def test_core_layering_baseline_is_empty(self, report):
        # The PR-3 refactor moved the federated drivers (fsvrg, tuning)
        # into repro/fl; core must stay free of upward imports, even
        # baselined ones.
        layering = [
            f
            for f in report.findings + report.baselined
            if f.rule_id.startswith("RL1") and f.path.startswith("src/repro/core")
        ]
        assert layering == []

    def test_src_tree_was_actually_checked(self, report):
        assert report.files_checked > 60
