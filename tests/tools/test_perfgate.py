"""Tests for the committed perf trajectory (tools/perfbench + tools/perfgate).

Two halves:

* gate-logic tests — synthetic perfbench JSON payloads exercising the
  pass/fail/ratchet/schema paths of ``tools.perfgate`` without running
  any training;
* a reduced-scale **smoke** run of the real macro-bench, asserting the
  artifact schema and that the batched executor stays bit-identical on
  a real (tiny) workload.
"""

import json

import pytest

from tools.perfgate import SCHEMA, check, load_report
from tools.perfgate import main as perfgate_main


def make_report(results):
    return {"schema": SCHEMA, "workload": {}, "results": results}


def cell(speedup, identical=True):
    return {
        "sequential_seconds": 1.0,
        "batched_seconds": 1.0 / speedup,
        "speedup": speedup,
        "identical": identical,
    }


def write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


class TestGateLogic:
    def test_passes_at_baseline(self):
        baseline = make_report({"fedavg": cell(1.5)})
        current = make_report({"fedavg": cell(1.5)})
        passed, lines = check(current, baseline, tolerance=0.6)
        assert passed and any("ok" in line for line in lines)

    def test_passes_within_tolerance(self):
        baseline = make_report({"fedavg": cell(1.5)})
        current = make_report({"fedavg": cell(1.0)})  # floor = 0.9
        passed, _ = check(current, baseline, tolerance=0.6)
        assert passed

    def test_fails_below_tolerance(self):
        baseline = make_report({"fedavg": cell(2.0)})
        current = make_report({"fedavg": cell(1.0)})  # floor = 1.2
        passed, lines = check(current, baseline, tolerance=0.6)
        assert not passed and any("FAIL" in line for line in lines)

    def test_fails_when_not_identical(self):
        baseline = make_report({"fedavg": cell(1.5)})
        current = make_report({"fedavg": cell(5.0, identical=False)})
        passed, lines = check(current, baseline, tolerance=0.6)
        assert not passed
        assert any("bit-identical" in line for line in lines)

    def test_fails_on_missing_algorithm(self):
        baseline = make_report({"fedavg": cell(1.5), "fedproxvr-svrg": cell(1.5)})
        current = make_report({"fedavg": cell(1.5)})
        passed, lines = check(current, baseline, tolerance=0.6)
        assert not passed and any("missing" in line for line in lines)

    def test_extra_current_algorithms_are_ignored(self):
        baseline = make_report({"fedavg": cell(1.5)})
        current = make_report({"fedavg": cell(1.5), "new-algo": cell(0.1)})
        passed, _ = check(current, baseline, tolerance=0.6)
        assert passed


class TestCli:
    def test_gate_pass_and_fail_exit_codes(self, tmp_path):
        baseline = write(tmp_path / "base.json", make_report({"a": cell(1.5)}))
        good = write(tmp_path / "good.json", make_report({"a": cell(1.4)}))
        bad = write(tmp_path / "bad.json", make_report({"a": cell(0.5)}))
        assert perfgate_main([good, "--baseline", baseline]) == 0
        assert perfgate_main([bad, "--baseline", baseline]) == 1

    def test_update_ratchets_baseline(self, tmp_path):
        baseline = write(tmp_path / "base.json", make_report({"a": cell(1.2)}))
        better = write(tmp_path / "better.json", make_report({"a": cell(1.8)}))
        assert perfgate_main([better, "--baseline", baseline, "--update"]) == 0
        assert load_report(baseline)["results"]["a"]["speedup"] == 1.8

    def test_rejects_wrong_schema(self, tmp_path):
        path = write(tmp_path / "bad.json", {"schema": "nope", "results": {"a": {}}})
        with pytest.raises(ValueError, match="schema"):
            load_report(path)

    def test_rejects_empty_results(self, tmp_path):
        path = write(tmp_path / "empty.json", {"schema": SCHEMA, "results": {}})
        with pytest.raises(ValueError, match="no results"):
            load_report(path)


class TestMacroBenchSmoke:
    """Reduced-scale end-to-end run of the real macro-bench."""

    def test_smoke_artifact_and_bit_identity(self, tmp_path):
        from tools.perfbench import main as perfbench_main

        out = tmp_path / "bench.json"
        rc = perfbench_main([
            "--devices", "8", "--samples", "320", "--rounds", "1",
            "--repeat", "1", "--output", str(out),
        ])
        assert rc == 0
        payload = load_report(str(out))  # validates schema on the way in
        assert set(payload["results"]) == {
            "fedavg", "fedproxvr-svrg", "fedproxvr-sarah"
        }
        for algorithm, result in payload["results"].items():
            assert result["identical"], (
                f"{algorithm}: batched result must stay bit-identical"
            )
            assert result["speedup"] > 0
        assert payload["min_speedup"] <= payload["geomean_speedup"]
        # ... and the smoke artifact gates cleanly against itself.
        assert perfgate_main([str(out), "--baseline", str(out)]) == 0
