"""Tests for the committed perf trajectory (tools/perfbench + tools/perfgate).

Two halves:

* gate-logic tests — synthetic perfbench JSON payloads exercising the
  pass/fail/ratchet/schema paths of ``tools.perfgate`` without running
  any training;
* a reduced-scale **smoke** run of the real macro-bench, asserting the
  artifact schema and that the batched executor stays bit-identical on
  a real (tiny) workload.
"""

import json

import pytest

from tools.perfgate import SCHEMA, check, check_scaling, load_report
from tools.perfgate import main as perfgate_main


def make_report(results):
    return {"schema": SCHEMA, "workload": {}, "results": results}


def scaling_cell(n, setup=0.02, mem=6.0, per_round=0.05):
    return {
        "registered_clients": n,
        "participants": 8,
        "rounds": 2,
        "setup_seconds": setup,
        "per_round_seconds": per_round,
        "peak_mem_mb": mem,
        "hydrations": 16,
        "lru_hits": 0,
    }


def make_scaling_report(cells, results=None):
    payload = {
        "schema": SCHEMA,
        "workload": {},
        "client_scaling": {"participants": 8, "rounds": 2, "cells": cells},
    }
    if results is not None:
        payload["results"] = results
    return payload


def cell(speedup, identical=True):
    return {
        "sequential_seconds": 1.0,
        "batched_seconds": 1.0 / speedup,
        "speedup": speedup,
        "identical": identical,
    }


def write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


class TestGateLogic:
    def test_passes_at_baseline(self):
        baseline = make_report({"fedavg": cell(1.5)})
        current = make_report({"fedavg": cell(1.5)})
        passed, lines = check(current, baseline, tolerance=0.6)
        assert passed and any("ok" in line for line in lines)

    def test_passes_within_tolerance(self):
        baseline = make_report({"fedavg": cell(1.5)})
        current = make_report({"fedavg": cell(1.0)})  # floor = 0.9
        passed, _ = check(current, baseline, tolerance=0.6)
        assert passed

    def test_fails_below_tolerance(self):
        baseline = make_report({"fedavg": cell(2.0)})
        current = make_report({"fedavg": cell(1.0)})  # floor = 1.2
        passed, lines = check(current, baseline, tolerance=0.6)
        assert not passed and any("FAIL" in line for line in lines)

    def test_fails_when_not_identical(self):
        baseline = make_report({"fedavg": cell(1.5)})
        current = make_report({"fedavg": cell(5.0, identical=False)})
        passed, lines = check(current, baseline, tolerance=0.6)
        assert not passed
        assert any("bit-identical" in line for line in lines)

    def test_fails_on_missing_algorithm(self):
        baseline = make_report({"fedavg": cell(1.5), "fedproxvr-svrg": cell(1.5)})
        current = make_report({"fedavg": cell(1.5)})
        passed, lines = check(current, baseline, tolerance=0.6)
        assert not passed and any("missing" in line for line in lines)

    def test_extra_current_algorithms_are_ignored(self):
        baseline = make_report({"fedavg": cell(1.5)})
        current = make_report({"fedavg": cell(1.5), "new-algo": cell(0.1)})
        passed, _ = check(current, baseline, tolerance=0.6)
        assert passed


class TestScalingGate:
    def test_flat_trajectory_passes(self):
        report = make_scaling_report(
            [scaling_cell(100), scaling_cell(100_000, setup=0.03, mem=6.4)]
        )
        passed, lines = check_scaling(report, tolerance=2.0)
        assert passed, lines

    def test_linear_memory_fails(self):
        # O(N) residency: memory grows 100x with the population.
        report = make_scaling_report(
            [scaling_cell(100, mem=20.0), scaling_cell(10_000, mem=2000.0)]
        )
        passed, lines = check_scaling(report, tolerance=2.0)
        assert not passed
        assert any("peak_mem_mb" in line and "FAIL" in line for line in lines)

    def test_linear_setup_fails(self):
        report = make_scaling_report(
            [scaling_cell(100, setup=0.2), scaling_cell(10_000, setup=20.0)]
        )
        passed, lines = check_scaling(report, tolerance=2.0)
        assert not passed

    def test_noise_floor_absorbs_tiny_differences(self):
        # 0.001s -> 0.004s is a 4x ratio but far below timer resolution.
        report = make_scaling_report(
            [scaling_cell(100, setup=0.001), scaling_cell(10_000, setup=0.004)]
        )
        passed, lines = check_scaling(report, tolerance=2.0)
        assert passed, lines

    def test_budgets_bound_the_max_cell(self):
        report = make_scaling_report(
            [scaling_cell(100), scaling_cell(10_000, mem=100.0)]
        )
        passed, _ = check_scaling(report, tolerance=100.0, mem_budget_mb=50.0)
        assert not passed
        passed, _ = check_scaling(report, tolerance=100.0, mem_budget_mb=200.0)
        assert passed

    def test_missing_cells_fail(self):
        passed, lines = check_scaling({"schema": SCHEMA}, tolerance=2.0)
        assert not passed and any("no client_scaling" in line for line in lines)

    def test_cells_sorted_by_population(self):
        # Cells given large-first must still compare max-N against min-N.
        report = make_scaling_report(
            [scaling_cell(10_000, mem=600.0), scaling_cell(100, mem=6.0)]
        )
        passed, _ = check_scaling(report, tolerance=2.0)
        assert not passed

    def test_scaling_only_artifact_loads(self, tmp_path):
        path = write(
            tmp_path / "scaling.json",
            make_scaling_report([scaling_cell(100), scaling_cell(10_000)]),
        )
        payload = load_report(path)
        assert "client_scaling" in payload
        assert perfgate_main([path]) == 0

    def test_cli_gates_scaling_section(self, tmp_path):
        bad = write(
            tmp_path / "bad.json",
            make_scaling_report(
                [scaling_cell(100, mem=20.0), scaling_cell(10_000, mem=900.0)]
            ),
        )
        assert perfgate_main([bad]) == 1

    def test_macro_and_scaling_both_gate(self, tmp_path):
        baseline = write(tmp_path / "base.json", make_report({"a": cell(1.5)}))
        combined = write(
            tmp_path / "combined.json",
            make_scaling_report(
                [scaling_cell(100), scaling_cell(10_000)],
                results={"a": cell(1.4)},
            ),
        )
        assert perfgate_main([combined, "--baseline", baseline]) == 0
        regressed = write(
            tmp_path / "regressed.json",
            make_scaling_report(
                [scaling_cell(100), scaling_cell(10_000)],
                results={"a": cell(0.2)},
            ),
        )
        assert perfgate_main([regressed, "--baseline", baseline]) == 1


class TestCli:
    def test_gate_pass_and_fail_exit_codes(self, tmp_path):
        baseline = write(tmp_path / "base.json", make_report({"a": cell(1.5)}))
        good = write(tmp_path / "good.json", make_report({"a": cell(1.4)}))
        bad = write(tmp_path / "bad.json", make_report({"a": cell(0.5)}))
        assert perfgate_main([good, "--baseline", baseline]) == 0
        assert perfgate_main([bad, "--baseline", baseline]) == 1

    def test_update_ratchets_baseline(self, tmp_path):
        baseline = write(tmp_path / "base.json", make_report({"a": cell(1.2)}))
        better = write(tmp_path / "better.json", make_report({"a": cell(1.8)}))
        assert perfgate_main([better, "--baseline", baseline, "--update"]) == 0
        assert load_report(baseline)["results"]["a"]["speedup"] == 1.8

    def test_rejects_wrong_schema(self, tmp_path):
        path = write(tmp_path / "bad.json", {"schema": "nope", "results": {"a": {}}})
        with pytest.raises(ValueError, match="schema"):
            load_report(path)

    def test_rejects_empty_results(self, tmp_path):
        path = write(tmp_path / "empty.json", {"schema": SCHEMA, "results": {}})
        with pytest.raises(ValueError, match="no results"):
            load_report(path)


class TestMacroBenchSmoke:
    """Reduced-scale end-to-end run of the real macro-bench."""

    def test_smoke_artifact_and_bit_identity(self, tmp_path):
        from tools.perfbench import main as perfbench_main

        out = tmp_path / "bench.json"
        rc = perfbench_main([
            "--devices", "8", "--samples", "320", "--rounds", "1",
            "--repeat", "1", "--output", str(out),
        ])
        assert rc == 0
        payload = load_report(str(out))  # validates schema on the way in
        assert set(payload["results"]) == {
            "fedavg", "fedproxvr-svrg", "fedproxvr-sarah"
        }
        for algorithm, result in payload["results"].items():
            assert result["identical"], (
                f"{algorithm}: batched result must stay bit-identical"
            )
            assert result["speedup"] > 0
        assert payload["min_speedup"] <= payload["geomean_speedup"]
        # ... and the smoke artifact gates cleanly against itself.
        assert perfgate_main([str(out), "--baseline", str(out)]) == 0

    def test_ledger_dir_emits_per_cell_ledgers(self, tmp_path):
        from repro.obs.diff import diff_ledgers
        from repro.obs.ledger import LedgerReader
        from tools.perfbench import main as perfbench_main

        ledger_dir = tmp_path / "ledgers"
        rc = perfbench_main([
            "--devices", "8", "--samples", "320", "--rounds", "1",
            "--repeat", "1", "--ledger-dir", str(ledger_dir),
        ])
        assert rc == 0
        names = sorted(p.name for p in ledger_dir.iterdir())
        assert names == sorted(
            f"{algo}.{execu}.ledger.jsonl"
            for algo in ("fedavg", "fedproxvr-svrg", "fedproxvr-sarah")
            for execu in ("sequential", "batched")
        )
        reader = LedgerReader(str(ledger_dir / "fedavg.batched.ledger.jsonl"))
        assert reader.validate() == []
        manifest = reader.manifest
        assert manifest["attrs"]["perfbench"] is True
        assert manifest["attrs"]["executor"] == "batched"
        assert manifest["attrs"]["wall_seconds"] > 0
        assert reader.rounds()  # per-round records from the history
        assert reader.by_type("hotspots")  # the drill-down payload
        # the executor pair diffs cleanly: bit-identical metrics, and a
        # structural span swap must not read as a regression
        result = diff_ledgers(
            str(ledger_dir / "fedavg.sequential.ledger.jsonl"),
            str(ledger_dir / "fedavg.batched.ledger.jsonl"),
        )
        assert result["shared_rounds"] >= 1
        assert result["metrics"]["train_loss"]["delta"] == 0.0
        assert result["same_source"] is True

    def test_client_scaling_smoke(self, tmp_path):
        from tools.perfbench import main as perfbench_main

        out = tmp_path / "scaling.json"
        rc = perfbench_main([
            "--client-scaling", "--skip-macro",
            "--scaling-devices", "20", "200",
            "--scaling-participants", "4", "--scaling-rounds", "1",
            "--repeat", "1", "--output", str(out),
        ])
        assert rc == 0
        payload = load_report(str(out))
        cells = payload["client_scaling"]["cells"]
        assert [c["registered_clients"] for c in cells] == [20, 200]
        for c in cells:
            assert c["participants"] == 4
            assert c["hydrations"] > 0
            assert c["peak_mem_mb"] > 0
        # O(K) residency at tiny scale: 10x population must not cost
        # 10x anything (the gate's floors absorb micro-run noise).
        assert perfgate_main([str(out), "--scaling-tolerance", "2.0"]) == 0

    def test_skip_macro_requires_scaling(self):
        from tools.perfbench import main as perfbench_main

        with pytest.raises(SystemExit):
            perfbench_main(["--skip-macro"])
