"""CFG construction and provenance-dataflow edge cases.

These pin the control-flow semantics the RL6xx/RL7xx rules depend on:
loop back-edges, ``while``/``else``, ``try``/``except``/``finally``,
``with`` suites, comprehension scoping, and constant folding through
augmented assignment.
"""

import ast
import textwrap

from tools.reprolint.cfg import build_cfg
from tools.reprolint.dataflow import ModuleDataflow


def parse(src: str) -> ast.Module:
    return ast.parse(textwrap.dedent(src))


def flow(src: str) -> "tuple[ast.Module, ModuleDataflow]":
    tree = parse(src)
    return tree, ModuleDataflow(tree)


def use_arg(tree: ast.Module, nth: int = 0) -> ast.AST:
    """The first argument of the ``nth`` call to the marker ``use(...)``."""
    calls = sorted(
        (
            n
            for n in ast.walk(tree)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "use"
        ),
        key=lambda c: c.lineno,
    )
    return calls[nth].args[0]


def kinds(values) -> set:
    return {v.kind for v in values}


def numeric(values) -> list:
    return sorted(v.value for v in values if v.kind in ("literal", "checked"))


def unreachable_lines(df: ModuleDataflow) -> set:
    return {u.lineno for u in df.unreachable_units()}


# ---------------------------------------------------------------------------
# CFG structure
# ---------------------------------------------------------------------------


class TestCfgStructure:
    def test_loop_head_has_back_edge(self):
        tree = parse(
            """\
            x = 3
            while x:
                x = x - 1
            done = True
            """
        )
        cfg = build_cfg(tree.body)
        [head] = [
            b for b in cfg.blocks.values()
            if any(isinstance(u, ast.While) for u in b.units)
        ]
        # Entry-side edge plus the back-edge from the loop body.
        assert len(head.pred) >= 2
        body_blocks = [
            cfg.blocks[p] for p in head.pred if cfg.blocks[p].units
            and not isinstance(cfg.blocks[p].units[0], ast.While)
        ]
        assert any(head.id in b.succ for b in body_blocks)

    def test_for_loop_body_and_after_reachable(self):
        tree = parse(
            """\
            total = 0
            for i in items:
                total = total + i
            after = 1
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == set()

    def test_rpo_starts_at_entry_and_covers_reachable(self):
        tree = parse(
            """\
            a = 1
            if a:
                b = 2
            else:
                c = 3
            d = 4
            """
        )
        cfg = build_cfg(tree.body)
        order = cfg.rpo()
        assert order[0] == cfg.entry
        assert set(order) == cfg.reachable()

    def test_while_else_reachable(self):
        tree = parse(
            """\
            n = 3
            while n:
                n = n - 1
            else:
                finished = True
            after = 1
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == set()

    def test_while_true_without_break_kills_fallthrough(self):
        tree = parse(
            """\
            while True:
                spin = 1
            dead = 2
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == {3}

    def test_while_true_with_break_falls_through(self):
        tree = parse(
            """\
            while True:
                break
            alive = 2
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == set()

    def test_code_after_return_unreachable(self):
        tree = parse(
            """\
            def f():
                return 1
                dead = 2
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == {3}

    def test_code_after_continue_unreachable(self):
        tree = parse(
            """\
            for i in items:
                continue
                dead = 1
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == {3}

    def test_try_handler_reachable_even_when_body_returns(self):
        tree = parse(
            """\
            def f():
                try:
                    return work()
                except ValueError:
                    handled = 1
                return handled
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == set()

    def test_raise_in_body_and_handlers_kills_join(self):
        tree = parse(
            """\
            try:
                raise ValueError("x")
            except KeyError:
                raise
            dead = 1
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == {5}

    def test_finally_and_following_code_reachable(self):
        tree = parse(
            """\
            try:
                x = work()
            except ValueError:
                x = 0
            finally:
                y = 1
            z = 2
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == set()

    def test_with_body_flows_through(self):
        tree = parse(
            """\
            with open(path) as fh:
                data = fh
            after = 1
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == set()

    def test_return_inside_with_kills_following_code(self):
        tree = parse(
            """\
            def f():
                with open(path) as fh:
                    return fh
                dead = 1
            """
        )
        df = ModuleDataflow(tree)
        assert unreachable_lines(df) == {4}


# ---------------------------------------------------------------------------
# Provenance dataflow
# ---------------------------------------------------------------------------


class TestProvenance:
    def test_augmented_assignment_folds_constants(self):
        tree, df = flow(
            """\
            beta = 2.0
            beta += 1.5
            use(beta)
            """
        )
        values = df.provenance(use_arg(tree))
        assert kinds(values) == {"literal"}
        assert numeric(values) == [3.5]

    def test_branch_join_is_may_union(self):
        tree, df = flow(
            """\
            if cond:
                tau = 4.0
            else:
                tau = 6.0
            use(tau)
            """
        )
        assert numeric(df.provenance(use_arg(tree))) == [4.0, 6.0]

    def test_loop_back_edge_constant_folding_terminates(self):
        tree, df = flow(
            """\
            x = 0.0
            while cond:
                x = x + 1.0
            use(x)
            """
        )
        # The literal set grows along the back-edge until the cap
        # collapses it to unknown; the analysis must reach a fixpoint.
        values = df.provenance(use_arg(tree))
        assert "unknown" in kinds(values)

    def test_comprehension_target_does_not_clobber_outer_binding(self):
        tree, df = flow(
            """\
            beta = 5.0
            squares = [beta * beta for beta in range(3)]
            use(beta)
            """
        )
        assert numeric(df.provenance(use_arg(tree))) == [5.0]

    def test_theory_check_upgrades_literal_to_checked(self):
        tree, df = flow(
            """\
            beta = 2.0
            lemma1_feasible(beta, 0.5)
            use(beta)
            """
        )
        values = df.provenance(use_arg(tree))
        assert kinds(values) == {"checked"}
        assert numeric(values) == [2.0]

    def test_check_on_one_branch_only_keeps_both_facts(self):
        tree, df = flow(
            """\
            beta = 2.0
            if cond:
                lemma1_feasible(beta, 0.5)
            use(beta)
            """
        )
        assert kinds(df.provenance(use_arg(tree))) == {"checked", "literal"}

    def test_raw_default_rng_and_alias(self):
        tree, df = flow(
            """\
            import numpy as np
            rng = np.random.default_rng(7)
            use(rng)
            make = np.random.default_rng
            rng2 = make(3)
            use(rng2)
            """
        )
        assert kinds(df.provenance(use_arg(tree, 0))) == {"rng_raw"}
        assert kinds(df.provenance(use_arg(tree, 1))) == {"rng_raw"}

    def test_blessed_factory_and_spawned_list_projection(self):
        tree, df = flow(
            """\
            from repro.utils.rng import as_generator, spawn_generators
            rng = as_generator(7)
            use(rng)
            gens = spawn_generators(7, 4)
            g = gens[0]
            use(g)
            for h in gens:
                use(h)
            """
        )
        assert kinds(df.provenance(use_arg(tree, 0))) == {"rng_blessed"}
        assert kinds(df.provenance(use_arg(tree, 1))) == {"rng_blessed"}
        assert kinds(df.provenance(use_arg(tree, 2))) == {"rng_blessed"}

    def test_function_parameters_are_param_kind(self):
        tree, df = flow(
            """\
            def f(beta):
                use(beta)
            """
        )
        assert kinds(df.provenance(use_arg(tree))) == {"param"}

    def test_handler_sees_both_pre_and_mid_try_values(self):
        tree, df = flow(
            """\
            x = 1.0
            try:
                x = 2.0
                work()
            except ValueError:
                use(x)
            """
        )
        # Any try-body statement may raise, so the handler may observe
        # the binding from before the try or after the re-assignment.
        assert numeric(df.provenance(use_arg(tree))) == [1.0, 2.0]

    def test_tuple_unpacking_tracks_positions(self):
        tree, df = flow(
            """\
            a, b = 1.0, 2.0
            use(a)
            use(b)
            """
        )
        assert numeric(df.provenance(use_arg(tree, 0))) == [1.0]
        assert numeric(df.provenance(use_arg(tree, 1))) == [2.0]

    def test_nested_function_scope_shadows_module(self):
        tree, df = flow(
            """\
            beta = 9.0
            def f():
                beta = 2.0
                use(beta)
            use(beta)
            """
        )
        assert numeric(df.provenance(use_arg(tree, 0))) == [2.0]
        assert numeric(df.provenance(use_arg(tree, 1))) == [9.0]
