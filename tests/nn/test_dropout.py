"""Tests for the Dropout layer."""

import numpy as np
import pytest

from repro.models.nn_model import NNModel
from repro.nn import Dense, Dropout, Sequential, SoftmaxCrossEntropy


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, seed=0)
        x = np.random.default_rng(0).standard_normal((4, 10))
        np.testing.assert_array_equal(layer.forward(x, train=False), x)

    def test_zero_rate_is_identity_in_train(self):
        layer = Dropout(0.0, seed=0)
        x = np.ones((2, 5))
        np.testing.assert_array_equal(layer.forward(x, train=True), x)

    def test_train_mode_zeroes_roughly_rate_fraction(self):
        layer = Dropout(0.3, seed=1)
        x = np.ones((100, 100))
        out = layer.forward(x, train=True)
        dropped = np.mean(out == 0.0)
        assert dropped == pytest.approx(0.3, abs=0.03)

    def test_survivors_scaled(self):
        layer = Dropout(0.5, seed=2)
        x = np.ones((50, 50))
        out = layer.forward(x, train=True)
        survivors = out[out != 0.0]
        np.testing.assert_allclose(survivors, 2.0)

    def test_expectation_preserved(self):
        layer = Dropout(0.4, seed=3)
        x = np.ones((200, 200))
        out = layer.forward(x, train=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=4)
        x = np.ones((10, 10))
        out = layer.forward(x, train=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, out)  # same mask, same scale

    def test_backward_after_eval_raises(self):
        layer = Dropout(0.5, seed=5)
        layer.forward(np.ones((2, 2)), train=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))

    def test_rate_one_rejected(self):
        with pytest.raises(Exception):
            Dropout(1.0)

    def test_no_parameters(self):
        assert Dropout(0.5).parameters() == []

    def test_inside_network_train_eval_paths(self):
        net = Sequential([Dense(4, 8, seed=0), Dropout(0.5, seed=1), Dense(8, 2, seed=2)])
        model = NNModel(net, SoftmaxCrossEntropy())
        w = model.init_parameters(0)
        rng = np.random.default_rng(0)
        X = rng.standard_normal((6, 4))
        y = rng.integers(0, 2, 6)
        # loss() uses train=False -> deterministic
        assert model.loss(w, X, y) == model.loss(w, X, y)
        # gradient path (train=True) runs without error and is finite
        loss, grad = model.loss_and_gradient(w, X, y)
        assert np.all(np.isfinite(grad))
