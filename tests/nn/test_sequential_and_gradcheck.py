"""Sequential container tests plus systematic finite-difference checks.

The gradient checks are the contract that makes every hand-written
backward pass trustworthy: for each architecture we compare the packed
analytic gradient of the mean loss against central differences at
randomly probed coordinates.
"""

import numpy as np
import pytest

from repro.models.nn_model import NNModel
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    MeanSquaredError,
    ReLU,
    Sequential,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
)


def probe_gradient(model: NNModel, X, y, num_probes=20, eps=1e-6, tol=1e-6):
    """Assert analytic grad ~= finite differences at random coordinates."""
    rng = np.random.default_rng(99)
    w = model.init_parameters(3)
    _, grad = model.loss_and_gradient(w, X, y)
    idx = rng.choice(w.size, size=min(num_probes, w.size), replace=False)
    for i in idx:
        wp, wm = w.copy(), w.copy()
        wp[i] += eps
        wm[i] -= eps
        fd = (model.loss(wp, X, y) - model.loss(wm, X, y)) / (2 * eps)
        assert grad[i] == pytest.approx(fd, abs=max(tol, tol * abs(fd))), f"coord {i}"


class TestSequential:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_parameter_concatenation_order(self):
        d1, d2 = Dense(2, 3, seed=0), Dense(3, 1, seed=1)
        seq = Sequential([d1, ReLU(), d2])
        params = seq.parameters()
        assert params[0] is d1.weight
        assert params[1] is d1.bias
        assert params[2] is d2.weight
        assert params[3] is d2.bias

    def test_forward_backward_chain(self):
        seq = Sequential([Dense(4, 3, seed=0), ReLU(), Dense(3, 2, seed=1)])
        x = np.random.default_rng(0).standard_normal((5, 4))
        out = seq.forward(x)
        assert out.shape == (5, 2)
        gin = seq.backward(np.ones_like(out))
        assert gin.shape == x.shape

    def test_len_and_iter(self):
        seq = Sequential([Dense(2, 2, seed=0), ReLU()])
        assert len(seq) == 2
        assert [type(m).__name__ for m in seq] == ["Dense", "ReLU"]

    def test_num_parameters(self):
        seq = Sequential([Dense(3, 4, seed=0), Dense(4, 2, seed=0)])
        assert seq.num_parameters == (3 * 4 + 4) + (4 * 2 + 2)


class TestGradientChecks:
    """Finite-difference verification per architecture family."""

    def setup_method(self):
        self.rng = np.random.default_rng(11)

    def test_linear_softmax(self):
        net = Sequential([Dense(6, 4, seed=0)])
        model = NNModel(net, SoftmaxCrossEntropy())
        X = self.rng.standard_normal((8, 6))
        y = self.rng.integers(0, 4, 8)
        probe_gradient(model, X, y)

    def test_mlp_relu(self):
        net = Sequential([Dense(5, 7, seed=0), ReLU(), Dense(7, 3, seed=1)])
        model = NNModel(net, SoftmaxCrossEntropy())
        X = self.rng.standard_normal((6, 5))
        y = self.rng.integers(0, 3, 6)
        probe_gradient(model, X, y)

    def test_mlp_sigmoid_tanh(self):
        net = Sequential(
            [Dense(4, 6, seed=0), Sigmoid(), Dense(6, 6, seed=1), Tanh(), Dense(6, 2, seed=2)]
        )
        model = NNModel(net, SoftmaxCrossEntropy())
        X = self.rng.standard_normal((5, 4))
        y = self.rng.integers(0, 2, 5)
        probe_gradient(model, X, y)

    def test_mse_regression_head(self):
        net = Sequential([Dense(4, 3, seed=0), Tanh(), Dense(3, 1, seed=1)])
        model = NNModel(net, MeanSquaredError())
        X = self.rng.standard_normal((7, 4))
        y = self.rng.standard_normal(7)
        probe_gradient(model, X, y)

    def test_conv_pool_net(self):
        net = Sequential(
            [
                Conv2D(1, 3, 3, padding=1, seed=0),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(3 * 4 * 4, 3, seed=1),
            ]
        )
        model = NNModel(net, SoftmaxCrossEntropy(), input_shape=(1, 8, 8))
        X = self.rng.standard_normal((4, 64))
        y = self.rng.integers(0, 3, 4)
        probe_gradient(model, X, y, tol=1e-5)

    def test_two_conv_blocks(self):
        net = Sequential(
            [
                Conv2D(1, 2, 3, padding=1, seed=0),
                ReLU(),
                MaxPool2D(2),
                Conv2D(2, 4, 3, padding=1, seed=1),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(4 * 2 * 2, 2, seed=2),
            ]
        )
        model = NNModel(net, SoftmaxCrossEntropy(), input_shape=(1, 8, 8))
        X = self.rng.standard_normal((3, 64))
        y = self.rng.integers(0, 2, 3)
        probe_gradient(model, X, y, tol=1e-5)

    def test_strided_conv(self):
        net = Sequential(
            [Conv2D(2, 3, 3, stride=2, seed=0), ReLU(), Flatten(), Dense(3 * 3 * 3, 2, seed=1)]
        )
        model = NNModel(net, SoftmaxCrossEntropy(), input_shape=(2, 7, 7))
        X = self.rng.standard_normal((3, 2 * 49))
        y = self.rng.integers(0, 2, 3)
        probe_gradient(model, X, y, tol=1e-5)
