"""Tests for repro.nn.im2col."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.nn.im2col import col2im, conv_output_size, im2col, sliding_windows


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(28, 5, 1, 0) == 24
        assert conv_output_size(28, 5, 1, 2) == 28
        assert conv_output_size(28, 2, 2, 0) == 14

    def test_nonpositive_raises(self):
        with pytest.raises(ConfigurationError):
            conv_output_size(3, 5, 1, 0)


class TestSlidingWindows:
    def test_shapes(self):
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float64).reshape(2, 3, 4, 4)
        win = sliding_windows(x, (2, 2), 1)
        assert win.shape == (2, 3, 3, 3, 2, 2)

    def test_window_contents(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        win = sliding_windows(x, (2, 2), 2)
        np.testing.assert_array_equal(win[0, 0, 0, 0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(win[0, 0, 1, 1], [[10, 11], [14, 15]])

    def test_zero_copy_view(self):
        x = np.zeros((1, 1, 4, 4))
        win = sliding_windows(x, (2, 2), 1)
        assert win.base is not None  # a view, not a copy


class TestIm2Col:
    def test_shape(self):
        x = np.zeros((2, 3, 8, 8))
        cols = im2col(x, (3, 3), stride=1, padding=0)
        assert cols.shape == (3 * 9, 2 * 6 * 6)

    def test_identity_kernel_1x1(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 4, 4))
        cols = im2col(x, (1, 1))
        # 1x1 patches are just the pixels, channel-major then batch-major.
        expected = x.transpose(1, 0, 2, 3).reshape(3, -1)
        np.testing.assert_allclose(cols, expected)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 2, 6, 6))
        w = rng.standard_normal((4, 2, 3, 3))
        cols = im2col(x, (3, 3), stride=1, padding=1)
        out = (w.reshape(4, -1) @ cols).reshape(4, 2, 6, 6).transpose(1, 0, 2, 3)

        # naive direct cross-correlation
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        patch = xp[n, :, i : i + 3, j : j + 3]
                        naive[n, o, i, j] = np.sum(patch * w[o])
        np.testing.assert_allclose(out, naive, rtol=1e-12)

    def test_bad_input_shape_raises(self):
        with pytest.raises(DimensionMismatchError):
            im2col(np.zeros((3, 8, 8)), (3, 3))

    def test_bad_stride_raises(self):
        with pytest.raises(ConfigurationError):
            im2col(np.zeros((1, 1, 8, 8)), (3, 3), stride=0)


class TestCol2Im:
    def test_adjoint_property(self):
        """col2im must be the exact transpose of im2col: <im2col(x), c> ==
        <x, col2im(c)> for all x, c."""
        rng = np.random.default_rng(2)
        x_shape = (2, 3, 5, 5)
        kernel, stride, padding = (3, 3), 2, 1
        x = rng.standard_normal(x_shape)
        cols = im2col(x, kernel, stride, padding)
        c = rng.standard_normal(cols.shape)
        lhs = np.sum(cols * c)
        rhs = np.sum(x * col2im(c, x_shape, kernel, stride, padding))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_nonoverlapping_roundtrip(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 2, 4, 4))
        cols = im2col(x, (2, 2), stride=2)
        back = col2im(cols, x.shape, (2, 2), stride=2)
        np.testing.assert_allclose(back, x)

    def test_overlap_accumulates(self):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((4, 4))  # 2x2 kernel, stride 1 -> 2x2 positions
        back = col2im(cols, x_shape, (2, 2), stride=1)
        # center pixel is covered by all four windows
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            col2im(np.zeros((4, 5)), (1, 1, 3, 3), (2, 2), stride=1)
