"""Tests for repro.nn.im2col."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.nn.im2col import (
    Im2colScratch,
    col2im,
    conv_output_size,
    im2col,
    sliding_windows,
)


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(28, 5, 1, 0) == 24
        assert conv_output_size(28, 5, 1, 2) == 28
        assert conv_output_size(28, 2, 2, 0) == 14

    def test_nonpositive_raises(self):
        with pytest.raises(ConfigurationError):
            conv_output_size(3, 5, 1, 0)


class TestSlidingWindows:
    def test_shapes(self):
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float64).reshape(2, 3, 4, 4)
        win = sliding_windows(x, (2, 2), 1)
        assert win.shape == (2, 3, 3, 3, 2, 2)

    def test_window_contents(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        win = sliding_windows(x, (2, 2), 2)
        np.testing.assert_array_equal(win[0, 0, 0, 0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(win[0, 0, 1, 1], [[10, 11], [14, 15]])

    def test_zero_copy_view(self):
        x = np.zeros((1, 1, 4, 4))
        win = sliding_windows(x, (2, 2), 1)
        assert win.base is not None  # a view, not a copy


class TestIm2Col:
    def test_shape(self):
        x = np.zeros((2, 3, 8, 8))
        cols = im2col(x, (3, 3), stride=1, padding=0)
        assert cols.shape == (3 * 9, 2 * 6 * 6)

    def test_identity_kernel_1x1(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 4, 4))
        cols = im2col(x, (1, 1))
        # 1x1 patches are just the pixels, channel-major then batch-major.
        expected = x.transpose(1, 0, 2, 3).reshape(3, -1)
        np.testing.assert_allclose(cols, expected)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 2, 6, 6))
        w = rng.standard_normal((4, 2, 3, 3))
        cols = im2col(x, (3, 3), stride=1, padding=1)
        out = (w.reshape(4, -1) @ cols).reshape(4, 2, 6, 6).transpose(1, 0, 2, 3)

        # naive direct cross-correlation
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        patch = xp[n, :, i : i + 3, j : j + 3]
                        naive[n, o, i, j] = np.sum(patch * w[o])
        np.testing.assert_allclose(out, naive, rtol=1e-12)

    def test_bad_input_shape_raises(self):
        with pytest.raises(DimensionMismatchError):
            im2col(np.zeros((3, 8, 8)), (3, 3))

    def test_bad_stride_raises(self):
        with pytest.raises(ConfigurationError):
            im2col(np.zeros((1, 1, 8, 8)), (3, 3), stride=0)


class TestCol2Im:
    def test_adjoint_property(self):
        """col2im must be the exact transpose of im2col: <im2col(x), c> ==
        <x, col2im(c)> for all x, c."""
        rng = np.random.default_rng(2)
        x_shape = (2, 3, 5, 5)
        kernel, stride, padding = (3, 3), 2, 1
        x = rng.standard_normal(x_shape)
        cols = im2col(x, kernel, stride, padding)
        c = rng.standard_normal(cols.shape)
        lhs = np.sum(cols * c)
        rhs = np.sum(x * col2im(c, x_shape, kernel, stride, padding))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_nonoverlapping_roundtrip(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 2, 4, 4))
        cols = im2col(x, (2, 2), stride=2)
        back = col2im(cols, x.shape, (2, 2), stride=2)
        np.testing.assert_allclose(back, x)

    def test_overlap_accumulates(self):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((4, 4))  # 2x2 kernel, stride 1 -> 2x2 positions
        back = col2im(cols, x_shape, (2, 2), stride=1)
        # center pixel is covered by all four windows
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            col2im(np.zeros((4, 5)), (1, 1, 3, 3), (2, 2), stride=1)


class TestIm2ColOutBuffer:
    def _problem(self, seed=0, padding=1):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, 3, 6, 6))
        kernel, stride = (3, 3), 1
        expected = im2col(x, kernel, stride, padding)
        return x, kernel, stride, padding, expected

    def test_out_matches_allocating_path_bitwise(self):
        x, kernel, stride, padding, expected = self._problem()
        out = np.empty(expected.shape)
        ret = im2col(x, kernel, stride, padding, out=out)
        assert ret is out
        np.testing.assert_array_equal(out, expected)

    def test_out_fully_overwritten(self):
        x, kernel, stride, padding, expected = self._problem()
        out = np.full(expected.shape, np.nan)
        im2col(x, kernel, stride, padding, out=out)
        assert np.all(np.isfinite(out))

    def test_wrong_out_shape_raises(self):
        x, kernel, stride, padding, expected = self._problem()
        with pytest.raises(DimensionMismatchError):
            im2col(x, kernel, stride, padding, out=np.empty((1, 1)))

    def test_wrong_out_dtype_raises(self):
        x, kernel, stride, padding, expected = self._problem()
        bad = np.empty(expected.shape, dtype=np.float32)
        with pytest.raises(DimensionMismatchError):
            im2col(x, kernel, stride, padding, out=bad)

    def test_noncontiguous_out_raises(self):
        x, kernel, stride, padding, expected = self._problem()
        h, w = expected.shape
        bad = np.empty((h, 2 * w))[:, ::2]
        with pytest.raises(DimensionMismatchError):
            im2col(x, kernel, stride, padding, out=bad)


class TestIm2colScratch:
    def test_same_shape_reuses_buffer(self):
        scratch = Im2colScratch()
        a = scratch.request((4, 9))
        b = scratch.request((4, 9))
        assert a is b

    def test_shape_change_reallocates(self):
        scratch = Im2colScratch()
        a = scratch.request((4, 9))
        b = scratch.request((4, 12))
        assert a is not b
        assert b.shape == (4, 12)

    def test_invalidate_forces_new_buffer(self):
        scratch = Im2colScratch()
        a = scratch.request((4, 9))
        scratch.invalidate()
        b = scratch.request((4, 9))
        assert a is not b

    def test_conv2d_train_cache_survives_interleaved_forwards(self):
        """The double-buffered train scratch must keep backward(t)'s
        columns intact even when forward(t+1) already ran."""
        from repro.nn.layers.conv2d import Conv2D

        rng = np.random.default_rng(3)
        x1 = rng.standard_normal((2, 1, 5, 5))
        x2 = rng.standard_normal((2, 1, 5, 5))
        g = rng.standard_normal((2, 2, 3, 3))

        ref = Conv2D(1, 2, 3, seed=0)
        ref.forward(x1, train=True)
        expected_grad_x = ref.backward(g)
        expected_grad_w = ref.grad_weight.copy()

        layer = Conv2D(1, 2, 3, seed=0)
        layer.forward(x1, train=True)
        cached = layer._cache_cols.copy()
        layer.forward(x2, train=False)  # eval scratch, independent
        np.testing.assert_array_equal(layer._cache_cols, cached)
        grad_x = layer.backward(g)
        np.testing.assert_array_equal(grad_x, expected_grad_x)
        np.testing.assert_array_equal(layer.grad_weight, expected_grad_w)

    def test_conv2d_eval_forward_bitwise_stable_across_reuse(self):
        from repro.nn.layers.conv2d import Conv2D

        rng = np.random.default_rng(5)
        layer = Conv2D(1, 2, 3, seed=0)
        x = rng.standard_normal((2, 1, 5, 5))
        first = layer.forward(x, train=False)
        # Second call reuses the scratch buffer; output must not alias it.
        second = layer.forward(x + 1.0, train=False)
        third = layer.forward(x, train=False)
        np.testing.assert_array_equal(first, third)
        assert not np.array_equal(first, second)
