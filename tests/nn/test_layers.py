"""Tests for individual layers: shapes, semantics, parameter plumbing."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sigmoid, Tanh


class TestDense:
    def test_forward_affine(self):
        layer = Dense(3, 2, seed=0)
        layer.weight[...] = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer.bias[...] = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[1 + 3 + 0.5, 2 + 3 - 0.5]])

    def test_no_bias(self):
        layer = Dense(3, 2, use_bias=False, seed=0)
        assert len(layer.parameters()) == 1
        out = layer.forward(np.zeros((4, 3)))
        np.testing.assert_allclose(out, np.zeros((4, 2)))

    def test_backward_shapes(self):
        layer = Dense(5, 3, seed=0)
        x = np.random.default_rng(0).standard_normal((7, 5))
        layer.forward(x)
        gin = layer.backward(np.ones((7, 3)))
        assert gin.shape == (7, 5)
        assert layer.grad_weight.shape == (5, 3)
        assert layer.grad_bias.shape == (3,)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, seed=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_wrong_input_width_raises(self):
        layer = Dense(3, 2, seed=0)
        with pytest.raises(DimensionMismatchError):
            layer.forward(np.zeros((4, 5)))

    def test_grad_bias_is_column_sum(self):
        layer = Dense(2, 2, seed=0)
        layer.forward(np.zeros((3, 2)))
        layer.backward(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        np.testing.assert_allclose(layer.grad_bias, [9.0, 12.0])

    def test_num_parameters(self):
        assert Dense(4, 3, seed=0).num_parameters == 4 * 3 + 3

    def test_zero_gradients(self):
        layer = Dense(2, 2, seed=0)
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        layer.zero_gradients()
        assert not layer.grad_weight.any()
        assert not layer.grad_bias.any()


class TestConv2D:
    def test_output_shape_same_padding(self):
        conv = Conv2D(1, 4, 5, padding=2, seed=0)
        assert conv.output_shape((1, 28, 28)) == (4, 28, 28)

    def test_forward_shape(self):
        conv = Conv2D(3, 8, 3, padding=1, seed=0)
        out = conv.forward(np.zeros((2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_known_convolution(self):
        conv = Conv2D(1, 1, 2, use_bias=False, seed=0)
        conv.weight[...] = np.array([[[[1.0, 0.0], [0.0, -1.0]]]])
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = conv.forward(x)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == pytest.approx(1.0 - 4.0)

    def test_bias_broadcast(self):
        conv = Conv2D(1, 2, 1, seed=0)
        conv.weight[...] = 0.0
        conv.bias[...] = np.array([1.0, -2.0])
        out = conv.forward(np.zeros((1, 1, 3, 3)))
        np.testing.assert_allclose(out[0, 0], 1.0)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_backward_shapes(self):
        conv = Conv2D(2, 4, 3, padding=1, seed=0)
        x = np.random.default_rng(1).standard_normal((2, 2, 6, 6))
        out = conv.forward(x)
        gin = conv.backward(np.ones_like(out))
        assert gin.shape == x.shape
        assert conv.grad_weight.shape == conv.weight.shape
        assert conv.grad_bias.shape == (4,)

    def test_wrong_channels_raises(self):
        conv = Conv2D(3, 4, 3, seed=0)
        with pytest.raises(DimensionMismatchError):
            conv.forward(np.zeros((1, 2, 8, 8)))

    def test_backward_before_forward_raises(self):
        conv = Conv2D(1, 1, 2, seed=0)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 1, 1)))

    def test_stride(self):
        conv = Conv2D(1, 1, 2, stride=2, seed=0)
        out = conv.forward(np.zeros((1, 1, 8, 8)))
        assert out.shape == (1, 1, 4, 4)


class TestMaxPool2D:
    def test_forward_values(self):
        pool = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0, 5.0, 0.0],
                        [3.0, 4.0, 1.0, 1.0],
                        [0.0, 0.0, 2.0, 2.0],
                        [9.0, 0.0, 2.0, 3.0]]]])
        out = pool.forward(x)
        np.testing.assert_allclose(out, [[[[4.0, 5.0], [9.0, 3.0]]]])

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool.forward(x)
        gin = pool.backward(np.array([[[[7.0]]]]))
        np.testing.assert_allclose(gin, [[[[0.0, 0.0], [0.0, 7.0]]]])

    def test_ties_go_to_first(self):
        pool = MaxPool2D(2)
        x = np.zeros((1, 1, 2, 2))
        pool.forward(x)
        gin = pool.backward(np.array([[[[1.0]]]]))
        assert gin[0, 0, 0, 0] == 1.0
        assert gin.sum() == 1.0

    def test_overlapping_stride_accumulates(self):
        pool = MaxPool2D(2, stride=1)
        x = np.array([[[[0.0, 0.0, 0.0],
                        [0.0, 9.0, 0.0],
                        [0.0, 0.0, 0.0]]]])
        out = pool.forward(x)
        np.testing.assert_allclose(out, 9.0)
        gin = pool.backward(np.ones((1, 1, 2, 2)))
        assert gin[0, 0, 1, 1] == 4.0  # all four windows argmax at center

    def test_no_parameters(self):
        assert MaxPool2D(2).parameters() == []

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            MaxPool2D(0)
        with pytest.raises(ConfigurationError):
            MaxPool2D(2, stride=0)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_mask(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 3.0]]))
        gin = relu.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(gin, [[0.0, 5.0]])

    def test_sigmoid_range_and_symmetry(self):
        s = Sigmoid()
        out = s.forward(np.array([[-100.0, 0.0, 100.0]]))
        assert 0.0 <= out.min() and out.max() <= 1.0
        assert out[0, 1] == pytest.approx(0.5)

    def test_sigmoid_extreme_stability(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))

    def test_tanh_backward(self):
        t = Tanh()
        t.forward(np.array([[0.0]]))
        gin = t.backward(np.array([[2.0]]))
        assert gin[0, 0] == pytest.approx(2.0)  # tanh'(0) = 1

    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh])
    def test_backward_before_forward_raises(self, layer_cls):
        with pytest.raises(RuntimeError):
            layer_cls().backward(np.zeros((1, 1)))

    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh])
    def test_stateless_params(self, layer_cls):
        assert layer_cls().parameters() == []


class TestFlatten:
    def test_roundtrip(self):
        f = Flatten()
        x = np.arange(24, dtype=np.float64).reshape(2, 3, 2, 2)
        out = f.forward(x)
        assert out.shape == (2, 12)
        back = f.backward(out)
        np.testing.assert_allclose(back, x)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Flatten().backward(np.zeros((1, 4)))
