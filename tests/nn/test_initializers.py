"""Tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import initializers


class TestRegistry:
    def test_lookup_known(self):
        assert initializers.get("zeros") is initializers.zeros
        assert initializers.get("glorot_uniform") is initializers.glorot_uniform
        assert initializers.get("he_normal") is initializers.he_normal

    def test_unknown_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="glorot_uniform"):
            initializers.get("nope")


class TestDistributions:
    def test_zeros(self):
        out = initializers.zeros((3, 4), (3, 4), np.random.default_rng(0))
        assert out.shape == (3, 4)
        assert not out.any()

    def test_glorot_limit(self):
        rng = np.random.default_rng(0)
        out = initializers.glorot_uniform((200, 100), (200, 100), rng)
        limit = np.sqrt(6.0 / 300)
        assert np.all(np.abs(out) <= limit)
        # should actually use the range, not collapse near zero
        assert np.abs(out).max() > 0.5 * limit

    def test_he_normal_std(self):
        rng = np.random.default_rng(0)
        out = initializers.he_normal((50, 200), (50, 200), rng)
        expected_std = np.sqrt(2.0 / 50)
        assert out.std() == pytest.approx(expected_std, rel=0.1)

    def test_normal_scaled(self):
        rng = np.random.default_rng(0)
        out = initializers.normal_scaled((100, 100), (1, 1), rng)
        assert out.std() == pytest.approx(0.01, rel=0.1)

    def test_determinism_with_same_rng_seed(self):
        a = initializers.he_normal((4, 4), (4, 4), np.random.default_rng(5))
        b = initializers.he_normal((4, 4), (4, 4), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_float64_dtype(self):
        for name in ("zeros", "glorot_uniform", "he_normal", "normal_scaled"):
            out = initializers.get(name)((2, 2), (2, 2), np.random.default_rng(0))
            assert out.dtype == np.float64
