"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.nn.losses import (
    MeanSquaredError,
    MulticlassHinge,
    SoftmaxCrossEntropy,
    log_softmax,
    softmax,
)


class TestSoftmaxStability:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        p = softmax(rng.standard_normal((5, 4)) * 10)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_softmax_huge_logits_finite(self):
        p = softmax(np.array([[1e4, 0.0, -1e4]]))
        assert np.all(np.isfinite(p))
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        rng = np.random.default_rng(1)
        s = rng.standard_normal((6, 3))
        np.testing.assert_allclose(log_softmax(s), np.log(softmax(s)), atol=1e-12)


class TestSoftmaxCrossEntropy:
    def test_uniform_scores_give_log_k(self):
        loss = SoftmaxCrossEntropy().value(np.zeros((4, 5)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(5))

    def test_perfect_prediction_near_zero(self):
        scores = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = SoftmaxCrossEntropy().value(scores, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-10)

    def test_grad_matches_finite_difference(self, fd_gradient):
        rng = np.random.default_rng(2)
        scores = rng.standard_normal((3, 4))
        y = rng.integers(0, 4, 3)
        head = SoftmaxCrossEntropy()
        _, grad = head.value_and_grad(scores, y)
        fd = fd_gradient(
            lambda s: head.value(s.reshape(3, 4), y), scores.ravel()
        ).reshape(3, 4)
        np.testing.assert_allclose(grad, fd, atol=1e-7)

    def test_grad_rows_sum_to_zero(self):
        rng = np.random.default_rng(3)
        scores = rng.standard_normal((5, 3))
        y = rng.integers(0, 3, 5)
        _, grad = SoftmaxCrossEntropy().value_and_grad(scores, y)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_label_batch_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            SoftmaxCrossEntropy().value(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestMeanSquaredError:
    def test_zero_residual(self):
        y = np.array([1.0, 2.0])
        assert MeanSquaredError().value(y.reshape(2, 1), y) == 0.0

    def test_value_formula(self):
        scores = np.array([[1.0], [0.0]])
        y = np.array([0.0, 0.0])
        assert MeanSquaredError().value(scores, y) == pytest.approx(0.25)

    def test_grad_matches_finite_difference(self, fd_gradient):
        rng = np.random.default_rng(4)
        scores = rng.standard_normal((4, 2))
        y = rng.standard_normal((4, 2))
        head = MeanSquaredError()
        _, grad = head.value_and_grad(scores, y)
        fd = fd_gradient(
            lambda s: head.value(s.reshape(4, 2), y), scores.ravel()
        ).reshape(4, 2)
        np.testing.assert_allclose(grad, fd, atol=1e-7)


class TestMulticlassHinge:
    def test_zero_loss_with_big_margin(self):
        scores = np.array([[10.0, 0.0], [0.0, 10.0]])
        assert MulticlassHinge().value(scores, np.array([0, 1])) == 0.0

    def test_violated_margin(self):
        scores = np.array([[0.0, 0.5]])
        # margin = 1 + 0.5 - 0 = 1.5
        assert MulticlassHinge().value(scores, np.array([0])) == pytest.approx(1.5)

    def test_binary_matches_paper_formula(self):
        # Symmetric two-class scores (s, -s) reduce to max(0, 1 - 2s) for
        # the positive class; check consistency of the reduction.
        s = 0.2
        scores = np.array([[s, -s]])
        loss = MulticlassHinge().value(scores, np.array([0]))
        assert loss == pytest.approx(max(0.0, 1.0 - 2 * s))

    def test_grad_matches_finite_difference_away_from_kink(self, fd_gradient):
        rng = np.random.default_rng(5)
        scores = rng.standard_normal((6, 3)) * 3.0
        y = rng.integers(0, 3, 6)
        head = MulticlassHinge()
        # keep away from the non-differentiable margin == 0 manifold
        margins, _ = head._margins(scores, y)
        if np.any(np.abs(margins) < 1e-3):
            scores = scores + 0.01
        _, grad = head.value_and_grad(scores, y)
        fd = fd_gradient(
            lambda s: head.value(s.reshape(6, 3), y), scores.ravel(), eps=1e-7
        ).reshape(6, 3)
        np.testing.assert_allclose(grad, fd, atol=1e-5)

    def test_needs_two_classes(self):
        with pytest.raises(DimensionMismatchError):
            MulticlassHinge().value(np.zeros((2, 1)), np.zeros(2, dtype=int))
