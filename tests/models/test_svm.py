"""Tests for repro.models.svm."""

import numpy as np
import pytest

from repro.models import LinearSVMModel


class TestBasics:
    def test_parameter_count(self):
        assert LinearSVMModel(4, 3).num_parameters == 15
        assert LinearSVMModel(4, 3, fit_intercept=False).num_parameters == 12

    def test_loss_at_zero_is_one(self):
        # all scores zero -> margin = 1 for every sample
        model = LinearSVMModel(3, 2, l2=0.0)
        X = np.ones((4, 3))
        y = np.zeros(4, dtype=int)
        assert model.loss(np.zeros(model.num_parameters), X, y) == pytest.approx(1.0)

    def test_separable_data_zero_hinge(self):
        model = LinearSVMModel(2, 2, l2=0.0, fit_intercept=False)
        w = model.spec.flatten([np.array([[10.0, -10.0], [0.0, 0.0]])])
        X = np.array([[1.0, 0.0], [-1.0, 0.0]])
        y = np.array([0, 1])
        assert model.loss(w, X, y) == pytest.approx(0.0)
        assert model.accuracy(w, X, y) == 1.0

    def test_l2_contributes(self):
        model = LinearSVMModel(2, 2, l2=2.0, fit_intercept=False)
        w = model.spec.flatten([np.eye(2) * 3.0])
        X = np.array([[0.0, 0.0]])
        y = np.array([0])
        # hinge at zero scores = 1; l2 = 0.5*2*(9+9)
        assert model.loss(w, X, y) == pytest.approx(1.0 + 18.0)


class TestGradients:
    def test_matches_finite_difference_generic_point(self, fd_gradient):
        rng = np.random.default_rng(0)
        model = LinearSVMModel(4, 3, l2=0.1)
        X = rng.standard_normal((8, 4)) * 2
        y = rng.integers(0, 3, 8)
        w = rng.standard_normal(model.num_parameters)
        _, grad = model.loss_and_gradient(w, X, y)
        fd = fd_gradient(lambda v: model.loss(v, X, y), w, eps=1e-7)
        np.testing.assert_allclose(grad, fd, atol=1e-5)

    def test_subgradient_descent_improves(self):
        rng = np.random.default_rng(1)
        # two well-separated clusters
        X = np.concatenate(
            [rng.standard_normal((40, 3)) + 3, rng.standard_normal((40, 3)) - 3]
        )
        y = np.concatenate([np.zeros(40, dtype=int), np.ones(40, dtype=int)])
        model = LinearSVMModel(3, 2, l2=1e-3)
        w = model.init_parameters(0)
        for _ in range(100):
            w = w - 0.1 * model.gradient(w, X, y)
        assert model.accuracy(w, X, y) > 0.95
