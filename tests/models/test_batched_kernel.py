"""Tests for repro.models.batched (vectorized cohort kernels)."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.models import MultinomialLogisticModel
from repro.models.batched import (
    LogisticBatchKernel,
    cohort_signature,
    make_batch_kernel,
)
from repro.models.linear_regression import LinearRegressionModel


def _stack_problem(K=5, B=9, f=7, c=3, l2=1e-3, fit_intercept=True, seed=0):
    rng = np.random.default_rng(seed)
    models = [
        MultinomialLogisticModel(f, c, l2=l2, fit_intercept=fit_intercept)
        for _ in range(K)
    ]
    D = models[0].num_parameters
    W = rng.standard_normal((K, D))
    X = rng.standard_normal((K, B, f))
    y = rng.integers(0, c, size=(K, B)).astype(np.float64)
    return models, W, X, y


class TestLogisticBatchKernel:
    def test_rows_bit_identical_to_sequential_gradient(self):
        models, W, X, y = _stack_problem()
        kernel = make_batch_kernel(models)
        G = kernel.gradient_stack(W, X, y)
        for k, model in enumerate(models):
            np.testing.assert_array_equal(G[k], model.gradient(W[k], X[k], y[k]))

    def test_no_intercept_variant(self):
        models, W, X, y = _stack_problem(fit_intercept=False)
        kernel = make_batch_kernel(models)
        G = kernel.gradient_stack(W, X, y)
        for k, model in enumerate(models):
            np.testing.assert_array_equal(G[k], model.gradient(W[k], X[k], y[k]))

    def test_out_buffer_is_used_and_returned(self):
        models, W, X, y = _stack_problem(K=3)
        kernel = make_batch_kernel(models)
        out = np.empty_like(W)
        ret = kernel.gradient_stack(W, X, y, out=out)
        assert ret is out
        np.testing.assert_array_equal(out, kernel.gradient_stack(W, X, y))

    def test_shape_mismatch_raises(self):
        models, W, X, y = _stack_problem()
        kernel = make_batch_kernel(models)
        with pytest.raises(DimensionMismatchError):
            kernel.gradient_stack(W[:, :-1], X, y)

    def test_single_client_stack_matches(self):
        models, W, X, y = _stack_problem(K=1)
        kernel = LogisticBatchKernel(models[0])
        G = kernel.gradient_stack(W, X, y)
        np.testing.assert_array_equal(G[0], models[0].gradient(W[0], X[0], y[0]))


class TestCohortSignature:
    def test_equal_architectures_share_signature(self):
        a = MultinomialLogisticModel(5, 3, l2=0.1)
        b = MultinomialLogisticModel(5, 3, l2=0.1)
        assert cohort_signature(a) == cohort_signature(b)
        assert cohort_signature(a) is not None

    def test_architecture_differences_split_cohorts(self):
        base = MultinomialLogisticModel(5, 3, l2=0.1)
        for other in (
            MultinomialLogisticModel(6, 3, l2=0.1),
            MultinomialLogisticModel(5, 4, l2=0.1),
            MultinomialLogisticModel(5, 3, l2=0.2),
            MultinomialLogisticModel(5, 3, l2=0.1, fit_intercept=False),
        ):
            assert cohort_signature(base) != cohort_signature(other)

    def test_gemv_shaped_models_have_no_signature(self):
        """Linear regression gradients are GEMV-shaped; GEMV vs width-1
        GEMM summation order is not guaranteed identical across BLAS
        builds, so these models must opt out of batching."""
        assert cohort_signature(LinearRegressionModel(4)) is None


class TestMakeBatchKernel:
    def test_homogeneous_cohort_gets_kernel(self):
        models, _, _, _ = _stack_problem()
        assert isinstance(make_batch_kernel(models), LogisticBatchKernel)

    def test_mixed_architectures_get_none(self):
        models = [
            MultinomialLogisticModel(5, 3),
            MultinomialLogisticModel(5, 4),
        ]
        assert make_batch_kernel(models) is None

    def test_unsupported_model_gets_none(self):
        assert make_batch_kernel([LinearRegressionModel(4)]) is None

    def test_empty_gets_none(self):
        assert make_batch_kernel([]) is None
