"""Tests for repro.models.logistic."""

import numpy as np
import pytest

from repro.models import MultinomialLogisticModel


class TestBasics:
    def test_parameter_count(self):
        assert MultinomialLogisticModel(4, 3).num_parameters == 4 * 3 + 3
        assert (
            MultinomialLogisticModel(4, 3, fit_intercept=False).num_parameters == 12
        )

    def test_uniform_loss_at_zero(self):
        model = MultinomialLogisticModel(3, 5)
        rng = np.random.default_rng(0)
        X = rng.standard_normal((6, 3))
        y = rng.integers(0, 5, 6)
        assert model.loss(np.zeros(model.num_parameters), X, y) == pytest.approx(
            np.log(5)
        )

    def test_predict_matches_argmax_proba(self):
        model = MultinomialLogisticModel(4, 3)
        rng = np.random.default_rng(1)
        w = model.init_parameters(0) * 10
        X = rng.standard_normal((8, 4))
        proba = model.predict_proba(w, X)
        np.testing.assert_array_equal(model.predict(w, X), proba.argmax(axis=1))

    def test_proba_rows_sum_to_one(self):
        model = MultinomialLogisticModel(4, 3)
        rng = np.random.default_rng(2)
        proba = model.predict_proba(
            model.init_parameters(1), rng.standard_normal((5, 4))
        )
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_accuracy_on_separable_data(self):
        model = MultinomialLogisticModel(2, 2, fit_intercept=False)
        # weight matrix scoring class 0 high for x0>0
        w = model.spec.flatten([np.array([[5.0, -5.0], [0.0, 0.0]])])
        X = np.array([[1.0, 0.0], [-1.0, 0.0]])
        y = np.array([0, 1])
        assert model.accuracy(w, X, y) == 1.0


class TestGradients:
    def test_matches_finite_difference(self, fd_gradient):
        rng = np.random.default_rng(3)
        model = MultinomialLogisticModel(5, 4, l2=0.05)
        X = rng.standard_normal((9, 5))
        y = rng.integers(0, 4, 9)
        w = model.init_parameters(2)
        _, grad = model.loss_and_gradient(w, X, y)
        fd = fd_gradient(lambda v: model.loss(v, X, y), w)
        np.testing.assert_allclose(grad, fd, atol=1e-7)

    def test_l2_shrinks_weights_not_bias(self):
        model = MultinomialLogisticModel(2, 2, l2=1.0)
        w = np.zeros(model.num_parameters)
        pieces = model.spec.unflatten(w)
        pieces[0][...] = 1.0  # weights
        pieces[1][...] = 1.0  # bias
        X = np.zeros((1, 2))
        y = np.array([0])
        _, grad = model.loss_and_gradient(w, X, y)
        grad_pieces = model.spec.unflatten(grad)
        # weight gradient contains the l2 pull
        assert np.all(grad_pieces[0] == pytest.approx(1.0))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(4)
        model = MultinomialLogisticModel(6, 3)
        X = rng.standard_normal((60, 6))
        y = rng.integers(0, 3, 60)
        w = model.init_parameters(0)
        before = model.loss(w, X, y)
        for _ in range(50):
            w = w - 0.5 * model.gradient(w, X, y)
        assert model.loss(w, X, y) < before


class TestSmoothness:
    def test_multiclass_scale(self):
        X = np.array([[2.0, 0.0]])
        model = MultinomialLogisticModel(2, 3)
        assert model.smoothness(X) == pytest.approx(0.5 * 4.0)

    def test_l2_added(self):
        X = np.array([[1.0, 0.0]])
        model = MultinomialLogisticModel(2, 3, l2=0.25)
        assert model.smoothness(X) == pytest.approx(0.5 + 0.25)
