"""Tests for repro.models.linear_regression."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.models import LinearRegressionModel


class TestBasics:
    def test_parameter_count(self):
        assert LinearRegressionModel(5).num_parameters == 6
        assert LinearRegressionModel(5, fit_intercept=False).num_parameters == 5

    def test_zero_loss_on_exact_fit(self):
        model = LinearRegressionModel(2, fit_intercept=False)
        w = np.array([2.0, -1.0])
        X = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        y = X @ w
        assert model.loss(w, X, y) == pytest.approx(0.0)

    def test_loss_value(self):
        model = LinearRegressionModel(1, fit_intercept=False)
        # residual = 1 on a single sample -> loss = 0.5
        assert model.loss(np.array([0.0]), [[1.0]], [1.0]) == pytest.approx(0.5)

    def test_intercept_used(self):
        model = LinearRegressionModel(1)
        w = np.array([0.0, 3.0])  # weight 0, intercept 3
        pred = model.predict(w, [[10.0]])
        assert pred[0] == pytest.approx(3.0)

    def test_wrong_parameter_size_raises(self):
        model = LinearRegressionModel(3)
        with pytest.raises(DimensionMismatchError):
            model.loss(np.zeros(3), np.zeros((2, 3)), np.zeros(2))


class TestGradients:
    def test_matches_finite_difference(self, fd_gradient):
        rng = np.random.default_rng(0)
        model = LinearRegressionModel(4, l2=0.1)
        X = rng.standard_normal((10, 4))
        y = rng.standard_normal(10)
        w = rng.standard_normal(model.num_parameters)
        _, grad = model.loss_and_gradient(w, X, y)
        fd = fd_gradient(lambda v: model.loss(v, X, y), w)
        np.testing.assert_allclose(grad, fd, atol=1e-7)

    def test_gradient_zero_at_least_squares_solution(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((30, 3))
        w_true = np.array([1.0, -2.0, 0.5])
        y = X @ w_true
        model = LinearRegressionModel(3, fit_intercept=False)
        grad = model.gradient(w_true, X, y)
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)

    def test_l2_not_applied_to_intercept(self):
        model = LinearRegressionModel(2, l2=1.0)
        w = np.array([0.0, 0.0, 5.0])  # big intercept, zero weights
        X = np.array([[0.0, 0.0]])
        y = np.array([5.0])  # perfectly fit by the intercept
        _, grad = model.loss_and_gradient(w, X, y)
        # no regularization pull on the intercept coordinate
        assert grad[2] == pytest.approx(0.0)


class TestMetrics:
    def test_r2_perfect(self):
        model = LinearRegressionModel(1, fit_intercept=False)
        X = np.array([[1.0], [2.0]])
        w = np.array([3.0])
        assert model.accuracy(w, X, X[:, 0] * 3.0) == pytest.approx(1.0)

    def test_r2_mean_predictor_zero(self):
        model = LinearRegressionModel(1)
        y = np.array([1.0, 3.0])
        w = np.array([0.0, 2.0])  # constant prediction = mean(y)
        X = np.array([[0.0], [0.0]])
        assert model.accuracy(w, X, y) == pytest.approx(0.0)

    def test_smoothness_includes_intercept_and_l2(self):
        X = np.array([[3.0, 4.0]])
        model = LinearRegressionModel(2, l2=0.5)
        # ||x||^2 + 1 (intercept col) + l2
        assert model.smoothness(X) == pytest.approx(25.0 + 1.0 + 0.5)

    def test_init_parameters_deterministic(self):
        model = LinearRegressionModel(4)
        np.testing.assert_array_equal(
            model.init_parameters(3), model.init_parameters(3)
        )
