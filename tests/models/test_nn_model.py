"""Tests for repro.models.nn_model and the MLP/CNN factories."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.models import make_mlp_model, make_paper_cnn_model
from repro.models.nn_model import NNModel
from repro.nn import Dense, Sequential, SoftmaxCrossEntropy


class TestNNModelAdapter:
    def setup_method(self):
        self.net = Sequential([Dense(4, 3, seed=0)])
        self.model = NNModel(self.net, SoftmaxCrossEntropy())
        self.rng = np.random.default_rng(0)
        self.X = self.rng.standard_normal((6, 4))
        self.y = self.rng.integers(0, 3, 6)

    def test_num_parameters(self):
        assert self.model.num_parameters == 4 * 3 + 3

    def test_loss_is_pure_function_of_w(self):
        w1 = self.model.init_parameters(1)
        w2 = self.model.init_parameters(2)
        a1 = self.model.loss(w1, self.X, self.y)
        _ = self.model.loss(w2, self.X, self.y)
        a1_again = self.model.loss(w1, self.X, self.y)
        assert a1 == a1_again

    def test_gradient_shape(self):
        w = self.model.init_parameters(0)
        _, g = self.model.loss_and_gradient(w, self.X, self.y)
        assert g.shape == w.shape

    def test_wrong_w_size_raises(self):
        with pytest.raises(DimensionMismatchError):
            self.model.loss(np.zeros(5), self.X, self.y)

    def test_batch_label_mismatch_raises(self):
        w = self.model.init_parameters(0)
        with pytest.raises(DimensionMismatchError):
            self.model.loss(w, self.X, self.y[:-1])

    def test_predict_labels_in_range(self):
        w = self.model.init_parameters(0)
        pred = self.model.predict(w, self.X)
        assert set(np.unique(pred)).issubset({0, 1, 2})

    def test_init_parameters_uses_builder(self):
        mlp = make_mlp_model(4, 3, (5,), seed=0)
        w_a = mlp.init_parameters(10)
        w_b = mlp.init_parameters(10)
        w_c = mlp.init_parameters(11)
        np.testing.assert_array_equal(w_a, w_b)
        assert not np.allclose(w_a, w_c)

    def test_input_shape_reshaping(self):
        cnn = make_paper_cnn_model((1, 8, 8), 2, channel_scale=0.05, seed=0)
        w = cnn.init_parameters(0)
        X_flat = np.random.default_rng(1).standard_normal((3, 64))
        X_shaped = X_flat.reshape(3, 1, 8, 8)
        assert cnn.loss(w, X_flat, np.zeros(3, dtype=int)) == pytest.approx(
            cnn.loss(w, X_shaped, np.zeros(3, dtype=int))
        )

    def test_bad_input_shape_raises(self):
        cnn = make_paper_cnn_model((1, 8, 8), 2, channel_scale=0.05, seed=0)
        w = cnn.init_parameters(0)
        with pytest.raises(DimensionMismatchError):
            cnn.loss(w, np.zeros((3, 63)), np.zeros(3, dtype=int))


class TestFactories:
    def test_mlp_hidden_stack(self):
        mlp = make_mlp_model(6, 3, (8, 4), seed=0)
        # layers: Dense, ReLU, Dense, ReLU, Dense
        assert len(mlp.network) == 5
        assert mlp.num_parameters == (6 * 8 + 8) + (8 * 4 + 4) + (4 * 3 + 3)

    def test_mlp_no_hidden(self):
        mlp = make_mlp_model(6, 3, (), seed=0)
        assert len(mlp.network) == 1

    def test_cnn_paper_architecture_parameter_count(self):
        cnn = make_paper_cnn_model((1, 28, 28), 10, channel_scale=1.0, seed=0)
        conv1 = 32 * 1 * 25 + 32
        conv2 = 64 * 32 * 25 + 64
        head = 64 * 7 * 7 * 10 + 10
        assert cnn.num_parameters == conv1 + conv2 + head

    def test_cnn_channel_scale_shrinks(self):
        big = make_paper_cnn_model((1, 28, 28), 10, channel_scale=1.0, seed=0)
        small = make_paper_cnn_model((1, 28, 28), 10, channel_scale=0.25, seed=0)
        assert small.num_parameters < big.num_parameters

    def test_cnn_rejects_bad_scale(self):
        with pytest.raises(Exception):
            make_paper_cnn_model((1, 28, 28), 10, channel_scale=0.0)
        with pytest.raises(Exception):
            make_paper_cnn_model((1, 28, 28), 10, channel_scale=1.5)

    def test_cnn_forward_runs(self):
        cnn = make_paper_cnn_model((1, 12, 12), 4, channel_scale=0.1, seed=0)
        w = cnn.init_parameters(0)
        X = np.random.default_rng(0).standard_normal((2, 144))
        y = np.array([0, 3])
        loss, grad = cnn.loss_and_gradient(w, X, y)
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))
