"""Tests for the repro.backend seam and the NumPy backend."""

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    NumpyBackend,
    ScratchPool,
    get_backend,
    set_backend,
    use_backend,
)


class TestSeam:
    def test_default_is_numpy(self):
        be = get_backend()
        assert isinstance(be, NumpyBackend)
        assert be.name == "numpy"

    def test_use_backend_scopes_and_restores(self):
        other = NumpyBackend()
        before = get_backend()
        with use_backend(other):
            assert get_backend() is other
        assert get_backend() is before

    def test_use_backend_restores_on_error(self):
        other = NumpyBackend()
        before = get_backend()
        with pytest.raises(RuntimeError):
            with use_backend(other):
                raise RuntimeError("boom")
        assert get_backend() is before

    def test_set_backend_returns_previous(self):
        other = NumpyBackend()
        previous = set_backend(other)
        try:
            assert get_backend() is other
        finally:
            set_backend(previous)

    def test_abstract_interface(self):
        with pytest.raises(TypeError):
            ArrayBackend()  # abstract


class TestNumpyBackendOps:
    def setup_method(self):
        self.be = NumpyBackend()
        self.rng = np.random.default_rng(0)

    def test_matmul_matches_numpy(self):
        A = self.rng.standard_normal((5, 7))
        B = self.rng.standard_normal((7, 3))
        np.testing.assert_array_equal(self.be.matmul(A, B), A @ B)

    def test_batched_matmul_bitwise_per_slice(self):
        """The bit-identity contract: each slice equals its 2-D matmul."""
        A = self.rng.standard_normal((4, 5, 7))
        B = self.rng.standard_normal((4, 7, 3))
        C = self.be.batched_matmul(A, B)
        for k in range(4):
            np.testing.assert_array_equal(C[k], A[k] @ B[k])

    def test_batched_matmul_out(self):
        A = self.rng.standard_normal((2, 3, 4))
        B = self.rng.standard_normal((2, 4, 5))
        out = np.empty((2, 3, 5))
        ret = self.be.batched_matmul(A, B, out=out)
        assert ret is out
        np.testing.assert_array_equal(out, A @ B)

    def test_gather_rows(self):
        X = self.rng.standard_normal((10, 4))
        idx = np.array([7, 1, 3])
        np.testing.assert_array_equal(self.be.gather_rows(X, idx), X[idx])

    def test_gather_rows_out(self):
        X = self.rng.standard_normal((10, 4))
        idx = np.array([0, 9])
        out = np.empty((2, 4))
        ret = self.be.gather_rows(X, idx, out=out)
        assert ret is out
        np.testing.assert_array_equal(out, X[idx])


class TestScratchPool:
    def test_reuses_same_key(self):
        pool = ScratchPool()
        a = pool.take((3, 4), np.float64)
        b = pool.take((3, 4), np.float64)
        assert a is b

    def test_distinct_keys_distinct_buffers(self):
        pool = ScratchPool()
        a = pool.take((3, 4), np.float64)
        b = pool.take((4, 3), np.float64)
        c = pool.take((3, 4), np.intp)
        assert a is not b and a is not c
        assert c.dtype == np.intp

    def test_clear_drops_buffers(self):
        pool = ScratchPool()
        a = pool.take((2, 2), np.float64)
        pool.clear()
        assert len(pool) == 0
        assert pool.take((2, 2), np.float64) is not a

    def test_eviction_bounds_entries(self):
        pool = ScratchPool(max_entries=4)
        for n in range(10):
            pool.take((n + 1,), np.float64)
        assert len(pool) <= 4
