"""Tests for repro.backend.shm (shared-memory arena)."""

import numpy as np
import pytest

from repro.backend.shm import ArraySpec, ShmArena, attach_array
from repro.exceptions import ConfigurationError
from repro.obs import InMemorySink, telemetry


class TestArraySpec:
    def test_nbytes(self):
        spec = ArraySpec("name", (3, 4), "<f8")
        assert spec.nbytes == 3 * 4 * 8

    def test_frozen(self):
        spec = ArraySpec("name", (2,), "<f8")
        with pytest.raises(AttributeError):
            spec.shm_name = "other"


class TestShmArena:
    def test_put_and_attach_roundtrip(self):
        rng = np.random.default_rng(0)
        original = rng.standard_normal((5, 3))
        with ShmArena() as arena:
            spec = arena.put(original)
            view, handle = attach_array(spec)
            try:
                np.testing.assert_array_equal(view, original)
            finally:
                handle.close()

    def test_put_copies(self):
        data = np.arange(6, dtype=np.float64)
        with ShmArena() as arena:
            spec = arena.put(data)
            data[0] = 99.0
            view, handle = attach_array(spec)
            try:
                assert view[0] == 0.0
            finally:
                handle.close()

    def test_create_writable_broadcast_block(self):
        with ShmArena() as arena:
            spec, writer = arena.create((4,))
            np.testing.assert_array_equal(writer, np.zeros(4))
            reader, handle = attach_array(spec)
            try:
                writer[...] = [1.0, 2.0, 3.0, 4.0]
                np.testing.assert_array_equal(reader, [1.0, 2.0, 3.0, 4.0])
            finally:
                handle.close()

    def test_zero_size_array(self):
        with ShmArena() as arena:
            spec = arena.put(np.empty((0, 7)))
            view, handle = attach_array(spec)
            try:
                assert view.shape == (0, 7)
            finally:
                handle.close()

    def test_close_unlinks(self):
        arena = ShmArena()
        spec = arena.put(np.ones(3))
        arena.close()
        with pytest.raises(FileNotFoundError):
            attach_array(spec)

    def test_close_idempotent(self):
        arena = ShmArena()
        arena.put(np.ones(2))
        arena.close()
        arena.close()  # must not raise

    def test_closed_arena_rejects_put(self):
        arena = ShmArena()
        arena.close()
        with pytest.raises(ConfigurationError):
            arena.put(np.ones(2))

    def test_len_counts_segments(self):
        with ShmArena() as arena:
            assert len(arena) == 0
            arena.put(np.ones(2))
            arena.create((3,))
            assert len(arena) == 2


def _leaked(specs):
    """The subset of ``specs`` whose segments are still attachable.

    An attachable name after the owning arena closed is an orphaned
    segment — exactly what a leak audit must catch.
    """
    orphans = []
    for spec in specs:
        try:
            _, handle = attach_array(spec)
        except FileNotFoundError:
            continue
        handle.close()
        orphans.append(spec.shm_name)
    return orphans


class TestShmLifecycle:
    """Create/attach/close/unlink pairing and orphan detection."""

    def test_every_attach_pairs_with_close(self):
        with ShmArena() as arena:
            spec = arena.put(np.arange(4, dtype=np.float64))
            first, h1 = attach_array(spec)
            second, h2 = attach_array(spec)
            np.testing.assert_array_equal(first, second)
            h1.close()
            # The second mapping survives the first handle's close, and
            # the creator still owns the segment.
            assert second[1] == 1.0
            h2.close()
            third, h3 = attach_array(spec)
            try:
                np.testing.assert_array_equal(third, np.arange(4))
            finally:
                h3.close()

    def test_exception_inside_context_still_unlinks(self):
        # Failure injection: the `with` block dies mid-population; the
        # arena must not orphan any of the segments it created.
        specs = []
        with pytest.raises(RuntimeError, match="injected"):
            with ShmArena() as arena:
                specs.append(arena.put(np.ones(8)))
                specs.append(arena.create((16,))[0])
                raise RuntimeError("injected failure mid-population")
        assert specs and _leaked(specs) == []

    def test_closed_arena_rejects_create_too(self):
        arena = ShmArena()
        arena.close()
        with pytest.raises(ConfigurationError):
            arena.create((3,))

    def test_repeated_arenas_leave_no_orphans(self):
        # Leak detection across many short-lived arenas (the per-run
        # pattern of the process executor's start/stop cycle).
        specs = []
        for i in range(5):
            with ShmArena() as arena:
                specs.append(arena.put(np.full(3, float(i))))
        assert _leaked(specs) == []

    def test_double_close_after_failure_injection(self):
        arena = ShmArena()
        spec = arena.put(np.ones(2))
        arena.close()
        arena.close()  # second close after teardown must stay silent
        with pytest.raises(FileNotFoundError):
            attach_array(spec)


class TestShmCounters:
    """Segment-lifecycle counters: created must reconcile with unlinked."""

    def _counters(self):
        snap = telemetry.metrics.snapshot()
        return {
            name: snap.get(f"backend.shm.{name}", {}).get("total", 0)
            for name in ("created", "attached", "unlinked")
        }

    def test_counters_track_lifecycle(self):
        telemetry.configure([InMemorySink()])
        try:
            with ShmArena() as arena:
                spec = arena.put(np.ones(3))
                arena.create((4,))
                _, handle = attach_array(spec)
                handle.close()
                _, handle = attach_array(spec)
                handle.close()
            counts = self._counters()
        finally:
            telemetry.shutdown()
        assert counts["created"] == 2
        assert counts["attached"] == 2
        # no leaks: everything created was unlinked at close
        assert counts["unlinked"] == counts["created"]

    def test_counters_silent_when_disabled(self):
        assert not telemetry.enabled
        with ShmArena() as arena:
            spec = arena.put(np.ones(2))
            _, handle = attach_array(spec)
            handle.close()
        telemetry.configure([InMemorySink()])
        try:
            snap = telemetry.metrics.snapshot()
        finally:
            telemetry.shutdown()
        assert "backend.shm.created" not in snap
