"""Tests for repro.backend.shm (shared-memory arena)."""

import numpy as np
import pytest

from repro.backend.shm import ArraySpec, ShmArena, attach_array
from repro.exceptions import ConfigurationError


class TestArraySpec:
    def test_nbytes(self):
        spec = ArraySpec("name", (3, 4), "<f8")
        assert spec.nbytes == 3 * 4 * 8

    def test_frozen(self):
        spec = ArraySpec("name", (2,), "<f8")
        with pytest.raises(AttributeError):
            spec.shm_name = "other"


class TestShmArena:
    def test_put_and_attach_roundtrip(self):
        rng = np.random.default_rng(0)
        original = rng.standard_normal((5, 3))
        with ShmArena() as arena:
            spec = arena.put(original)
            view, handle = attach_array(spec)
            try:
                np.testing.assert_array_equal(view, original)
            finally:
                handle.close()

    def test_put_copies(self):
        data = np.arange(6, dtype=np.float64)
        with ShmArena() as arena:
            spec = arena.put(data)
            data[0] = 99.0
            view, handle = attach_array(spec)
            try:
                assert view[0] == 0.0
            finally:
                handle.close()

    def test_create_writable_broadcast_block(self):
        with ShmArena() as arena:
            spec, writer = arena.create((4,))
            np.testing.assert_array_equal(writer, np.zeros(4))
            reader, handle = attach_array(spec)
            try:
                writer[...] = [1.0, 2.0, 3.0, 4.0]
                np.testing.assert_array_equal(reader, [1.0, 2.0, 3.0, 4.0])
            finally:
                handle.close()

    def test_zero_size_array(self):
        with ShmArena() as arena:
            spec = arena.put(np.empty((0, 7)))
            view, handle = attach_array(spec)
            try:
                assert view.shape == (0, 7)
            finally:
                handle.close()

    def test_close_unlinks(self):
        arena = ShmArena()
        spec = arena.put(np.ones(3))
        arena.close()
        with pytest.raises(FileNotFoundError):
            attach_array(spec)

    def test_close_idempotent(self):
        arena = ShmArena()
        arena.put(np.ones(2))
        arena.close()
        arena.close()  # must not raise

    def test_closed_arena_rejects_put(self):
        arena = ShmArena()
        arena.close()
        with pytest.raises(ConfigurationError):
            arena.put(np.ones(2))

    def test_len_counts_segments(self):
        with ShmArena() as arena:
            assert len(arena) == 0
            arena.put(np.ones(2))
            arena.create((3,))
            assert len(arena) == 2
