"""Shared fixtures: small, fast federated problems reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_synthetic
from repro.models import MultinomialLogisticModel


@pytest.fixture(scope="session")
def rng():
    """Session RNG for ad-hoc draws (tests needing isolation make their own)."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 6-device synthetic federation small enough for per-test training."""
    return make_synthetic(
        alpha=1.0,
        beta=1.0,
        num_devices=6,
        num_features=12,
        num_classes=4,
        min_size=30,
        max_size=80,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_model_factory(tiny_dataset):
    """Factory for a logistic model matching ``tiny_dataset``."""

    def factory():
        return MultinomialLogisticModel(
            tiny_dataset.num_features, tiny_dataset.num_classes
        )

    return factory


@pytest.fixture()
def small_batch(rng):
    """A small (X, y) classification batch: 20 samples, 8 features, 3 classes."""
    X = rng.standard_normal((20, 8))
    y = rng.integers(0, 3, size=20)
    return X, y


def finite_difference_gradient(loss_fn, w, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function (test helper)."""
    w = np.asarray(w, dtype=np.float64)
    grad = np.zeros_like(w)
    for i in range(w.size):
        wp = w.copy()
        wm = w.copy()
        wp[i] += eps
        wm[i] -= eps
        grad[i] = (loss_fn(wp) - loss_fn(wm)) / (2.0 * eps)
    return grad


@pytest.fixture(scope="session")
def fd_gradient():
    """Expose the finite-difference helper as a fixture."""
    return finite_difference_gradient
