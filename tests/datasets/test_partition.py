"""Tests for repro.datasets.partition."""

import numpy as np
import pytest

from repro.datasets.partition import (
    assign_device_labels,
    label_distribution,
    pathological_partition,
    power_law_sizes,
)
from repro.exceptions import ConfigurationError


class TestPowerLawSizes:
    def test_respects_min(self):
        sizes = power_law_sizes(50, min_size=40, seed=0)
        assert np.all(sizes >= 40)

    def test_respects_max_clip(self):
        sizes = power_law_sizes(200, min_size=10, max_size=100, seed=0)
        assert np.all(sizes <= 100)

    def test_heavy_tail_present(self):
        sizes = power_law_sizes(300, min_size=10, seed=1)
        # a heavy-tailed draw should be strongly right-skewed
        assert sizes.max() > 5 * np.median(sizes)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            power_law_sizes(10, seed=3), power_law_sizes(10, seed=3)
        )

    def test_bad_max_rejected(self):
        with pytest.raises(ConfigurationError):
            power_law_sizes(5, min_size=50, max_size=10, seed=0)


class TestAssignDeviceLabels:
    def test_exact_label_count(self):
        sets = assign_device_labels(20, 10, 2, seed=0)
        assert all(len(s) == 2 for s in sets)
        assert all(len(np.unique(s)) == 2 for s in sets)

    def test_all_classes_covered(self):
        sets = assign_device_labels(20, 10, 2, seed=1)
        covered = set(np.concatenate(sets).tolist())
        assert covered == set(range(10))

    def test_labels_per_device_exceeding_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_device_labels(3, 2, 5, seed=0)

    def test_full_label_set_allowed(self):
        sets = assign_device_labels(4, 3, 3, seed=0)
        for s in sets:
            np.testing.assert_array_equal(s, [0, 1, 2])


class TestPathologicalPartition:
    def make_labels(self, per_class=100, num_classes=10):
        return np.repeat(np.arange(num_classes), per_class)

    def test_sizes_honored(self):
        y = self.make_labels()
        sizes = [30, 50, 20]
        parts = pathological_partition(y, 3, sizes=sizes, seed=0)
        assert [len(p) for p in parts] == sizes

    def test_two_labels_per_device(self):
        y = self.make_labels()
        parts = pathological_partition(y, 10, labels_per_device=2, sizes=[40] * 10, seed=0)
        for idx in parts:
            assert len(np.unique(y[idx])) <= 2

    def test_replacement_fallback_on_small_pool(self):
        # 10 samples per class but devices demand far more
        y = self.make_labels(per_class=10, num_classes=4)
        parts = pathological_partition(y, 2, labels_per_device=2, sizes=[200, 200], seed=0)
        assert [len(p) for p in parts] == [200, 200]

    def test_sizes_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            pathological_partition(self.make_labels(), 3, sizes=[10, 10], seed=0)

    def test_deterministic(self):
        y = self.make_labels()
        a = pathological_partition(y, 4, sizes=[25] * 4, seed=5)
        b = pathological_partition(y, 4, sizes=[25] * 4, seed=5)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)

    def test_default_sizes_drawn(self):
        y = self.make_labels()
        parts = pathological_partition(y, 3, seed=0)
        assert len(parts) == 3
        assert all(len(p) > 0 for p in parts)


class TestLabelDistribution:
    def test_counts(self):
        y = np.array([0, 0, 1, 1, 2])
        parts = [np.array([0, 1, 2]), np.array([3, 4])]
        dist = label_distribution(y, parts)
        np.testing.assert_array_equal(dist, [[2, 1, 0], [0, 1, 1]])

    def test_row_sums_match_partition_sizes(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 5, 100)
        parts = pathological_partition(y, 4, sizes=[20, 20, 20, 20], seed=1)
        dist = label_distribution(y, parts)
        np.testing.assert_array_equal(dist.sum(axis=1), [20, 20, 20, 20])
