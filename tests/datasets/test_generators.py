"""Tests for the synthetic / digits / fashion dataset generators."""

import numpy as np
import pytest

from repro.datasets import make_digits, make_fashion, make_synthetic
from repro.datasets.digits import digit_prototypes
from repro.datasets.fashion import garment_prototypes
from repro.datasets.imaging import (
    IMAGE_SIZE,
    perturb,
    render_prototype,
    synthesize_corpus,
)
from repro.datasets.splits import train_test_split_device
from repro.exceptions import ConfigurationError
from repro.models import MultinomialLogisticModel


class TestSplits:
    def test_fraction_respected(self):
        X = np.zeros((100, 2))
        y = np.zeros(100)
        X_tr, y_tr, X_te, y_te = train_test_split_device(X, y, train_fraction=0.75, seed=0)
        assert X_tr.shape[0] == 75
        assert X_te.shape[0] == 25

    def test_single_sample_goes_to_train(self):
        X_tr, _, X_te, _ = train_test_split_device(
            np.zeros((1, 2)), np.zeros(1), seed=0
        )
        assert X_tr.shape[0] == 1
        assert X_te.shape[0] == 0

    def test_shuffles(self):
        X = np.arange(20).reshape(20, 1).astype(float)
        X_tr, _, _, _ = train_test_split_device(X, np.zeros(20), seed=3)
        assert not np.array_equal(X_tr[:, 0], np.arange(15))

    def test_bad_fraction(self):
        with pytest.raises(Exception):
            train_test_split_device(np.zeros((5, 1)), np.zeros(5), train_fraction=1.0)


class TestSynthetic:
    def test_shapes_and_metadata(self):
        ds = make_synthetic(0.5, 0.5, num_devices=8, num_features=20, num_classes=5, seed=0)
        assert ds.num_devices == 8
        assert ds.num_features == 20
        assert ds.num_classes == 5
        assert all(d.X_train.shape[1] == 20 for d in ds.devices)

    def test_deterministic(self):
        a = make_synthetic(1, 1, num_devices=4, seed=9)
        b = make_synthetic(1, 1, num_devices=4, seed=9)
        np.testing.assert_array_equal(a.devices[0].X_train, b.devices[0].X_train)
        np.testing.assert_array_equal(a.devices[2].y_train, b.devices[2].y_train)

    def test_seed_changes_data(self):
        a = make_synthetic(1, 1, num_devices=4, seed=1)
        b = make_synthetic(1, 1, num_devices=4, seed=2)
        assert not np.allclose(a.devices[0].X_train[:5], b.devices[0].X_train[:5])

    def test_iid_mode_shares_generator(self):
        ds = make_synthetic(1, 1, num_devices=6, iid=True, seed=0)
        assert ds.extra["iid"] is True
        # iid data should be much less heterogeneous: all devices share
        # the same input mean, so per-device feature means are close.
        means = np.stack([d.X_train.mean(axis=0) for d in ds.devices])
        assert means.std(axis=0).mean() < 0.6

    def test_noniid_has_device_shift(self):
        ds = make_synthetic(0.0, 2.0, num_devices=6, iid=False, seed=0)
        means = np.stack([d.X_train.mean(axis=0) for d in ds.devices])
        assert means.std(axis=0).mean() > 0.5

    def test_labels_in_range(self):
        ds = make_synthetic(1, 1, num_devices=5, num_classes=7, seed=0)
        X, y = ds.global_train()
        assert y.min() >= 0 and y.max() < 7

    def test_rejects_negative_alpha(self):
        with pytest.raises(Exception):
            make_synthetic(-1.0, 0.0, num_devices=3)


class TestImaging:
    def test_render_prototype_shape_and_range(self):
        proto = render_prototype([" ### "] * 7)
        assert proto.shape == (IMAGE_SIZE, IMAGE_SIZE)
        assert proto.min() >= 0.0
        assert proto.max() <= 1.0 + 1e-9

    def test_render_rejects_bad_bitmap(self):
        with pytest.raises(ConfigurationError):
            render_prototype(["###"] * 7)
        with pytest.raises(ConfigurationError):
            render_prototype([" ### "] * 5)

    def test_perturb_clips_to_unit_interval(self):
        proto = render_prototype(["#####"] * 7)
        img = perturb(proto, np.random.default_rng(0), noise_std=0.5)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_perturb_varies_between_draws(self):
        proto = render_prototype(["#####"] * 7)
        rng = np.random.default_rng(0)
        a = perturb(proto, rng)
        b = perturb(proto, rng)
        assert not np.allclose(a, b)

    def test_synthesize_corpus_shapes(self):
        protos = {0: render_prototype(["#    "] * 7), 1: render_prototype(["    #"] * 7)}
        X, y = synthesize_corpus(protos, 30, seed=0)
        assert X.shape == (30, IMAGE_SIZE**2)
        assert set(np.unique(y)).issubset({0, 1})

    def test_class_skew_tilts_prior(self):
        protos = {i: render_prototype(["#####"] * 7) for i in range(5)}
        _, y = synthesize_corpus(protos, 3000, seed=0, class_skew=2.0)
        counts = np.bincount(y, minlength=5)
        assert counts[0] > 2 * counts[4]

    def test_prototypes_are_distinct(self):
        for protos in (digit_prototypes(), garment_prototypes()):
            keys = sorted(protos)
            assert keys == list(range(10))
            # pairwise distances all strictly positive
            for i in keys:
                for j in keys:
                    if i < j:
                        assert np.linalg.norm(protos[i] - protos[j]) > 0.5


class TestImageDatasets:
    @pytest.mark.parametrize("maker", [make_digits, make_fashion])
    def test_partition_contract(self, maker):
        ds = maker(num_devices=6, num_samples=400, labels_per_device=2,
                   min_size=20, max_size=120, seed=0)
        assert ds.num_devices == 6
        assert ds.num_features == 784
        assert ds.num_classes == 10
        for dev in ds.devices:
            # train shard labels limited to the device's 2 assigned labels
            assert len(dev.train_labels) <= 2

    def test_digits_learnable_by_logistic(self):
        ds = make_digits(num_devices=4, num_samples=600, min_size=50,
                         max_size=250, seed=0)
        X, y = ds.global_train()
        Xt, yt = ds.global_test()
        model = MultinomialLogisticModel(784, 10)
        w = model.init_parameters(0)
        for _ in range(150):
            w -= 0.5 * model.gradient(w, X, y)
        assert model.accuracy(w, Xt, yt) > 0.7

    def test_digits_deterministic(self):
        a = make_digits(num_devices=3, num_samples=100, min_size=15, max_size=40, seed=4)
        b = make_digits(num_devices=3, num_samples=100, min_size=15, max_size=40, seed=4)
        np.testing.assert_array_equal(a.devices[1].X_train, b.devices[1].X_train)

    def test_fashion_differs_from_digits(self):
        d = make_digits(num_devices=3, num_samples=100, min_size=15, max_size=40, seed=0)
        f = make_fashion(num_devices=3, num_samples=100, min_size=15, max_size=40, seed=0)
        assert d.name != f.name
        assert not np.allclose(
            d.devices[0].X_train[:3], f.devices[0].X_train[:3]
        )
