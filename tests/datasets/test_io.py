"""Tests for repro.datasets.io (npz round-tripping)."""

import numpy as np
import pytest

from repro.datasets import make_synthetic
from repro.datasets.io import load_federated_dataset, save_federated_dataset
from repro.exceptions import ConfigurationError


class TestRoundTrip:
    def test_exact_roundtrip(self, tmp_path):
        ds = make_synthetic(1.0, 0.5, num_devices=4, num_features=10,
                            num_classes=3, min_size=20, max_size=40, seed=0)
        path = save_federated_dataset(ds, tmp_path / "data")
        back = load_federated_dataset(path)
        assert back.name == ds.name
        assert back.num_features == ds.num_features
        assert back.num_classes == ds.num_classes
        assert back.num_devices == ds.num_devices
        for a, b in zip(ds.devices, back.devices):
            assert a.device_id == b.device_id
            np.testing.assert_array_equal(a.X_train, b.X_train)
            np.testing.assert_array_equal(a.y_train, b.y_train)
            np.testing.assert_array_equal(a.X_test, b.X_test)
            np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_extra_metadata_preserved(self, tmp_path):
        ds = make_synthetic(2.0, 0.0, num_devices=2, num_features=5,
                            num_classes=2, min_size=10, max_size=20, seed=1)
        back = load_federated_dataset(save_federated_dataset(ds, tmp_path / "x"))
        assert back.extra["alpha"] == 2.0
        assert back.extra["iid"] is False

    def test_suffix_appended(self, tmp_path):
        ds = make_synthetic(1, 1, num_devices=2, num_features=5, num_classes=2,
                            min_size=10, max_size=20, seed=2)
        path = save_federated_dataset(ds, tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_weights_preserved(self, tmp_path):
        ds = make_synthetic(1, 1, num_devices=5, num_features=5, num_classes=2,
                            min_size=10, max_size=200, seed=3)
        back = load_federated_dataset(save_federated_dataset(ds, tmp_path / "w"))
        np.testing.assert_allclose(back.weights(), ds.weights())


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_federated_dataset(tmp_path / "nope.npz")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_federated_dataset(path)
