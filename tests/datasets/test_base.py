"""Tests for repro.datasets.base containers."""

import numpy as np
import pytest

from repro.datasets.base import DeviceData, FederatedDataset
from repro.exceptions import ConfigurationError, DimensionMismatchError


def make_device(device_id=0, n_train=10, n_test=4, d=3, label=0):
    rng = np.random.default_rng(device_id)
    return DeviceData(
        device_id,
        rng.standard_normal((n_train, d)),
        np.full(n_train, label),
        rng.standard_normal((n_test, d)),
        np.full(n_test, label),
    )


class TestDeviceData:
    def test_counts(self):
        dev = make_device(n_train=7, n_test=3)
        assert dev.num_train == 7
        assert dev.num_test == 3

    def test_empty_train_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceData(0, np.zeros((0, 3)), np.zeros(0), np.zeros((1, 3)), np.zeros(1))

    def test_empty_test_allowed(self):
        dev = DeviceData(0, np.zeros((2, 3)), np.zeros(2), np.zeros((0, 3)), np.zeros(0))
        assert dev.num_test == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            DeviceData(0, np.zeros((3, 2)), np.zeros(2), np.zeros((1, 2)), np.zeros(1))

    def test_1d_features_rejected(self):
        with pytest.raises(DimensionMismatchError):
            DeviceData(0, np.zeros(3), np.zeros(3), np.zeros((1, 2)), np.zeros(1))

    def test_train_labels(self):
        dev = DeviceData(
            0,
            np.zeros((4, 2)),
            np.array([1, 1, 3, 3]),
            np.zeros((0, 2)),
            np.zeros(0),
        )
        np.testing.assert_array_equal(dev.train_labels, [1, 3])


class TestFederatedDataset:
    def test_weights_sum_to_one_and_proportional(self):
        devs = [make_device(0, n_train=10), make_device(1, n_train=30)]
        ds = FederatedDataset(devs, num_features=3, num_classes=2)
        w = ds.weights()
        assert w.sum() == pytest.approx(1.0)
        assert w[1] == pytest.approx(0.75)

    def test_total_train(self):
        devs = [make_device(i, n_train=5 + i) for i in range(3)]
        ds = FederatedDataset(devs, num_features=3, num_classes=2)
        assert ds.total_train == 5 + 6 + 7

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FederatedDataset([], num_features=3, num_classes=2)

    def test_feature_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            FederatedDataset([make_device(0, d=4)], num_features=3, num_classes=2)

    def test_global_concatenation(self):
        devs = [make_device(0, n_train=4), make_device(1, n_train=6)]
        ds = FederatedDataset(devs, num_features=3, num_classes=2)
        X, y = ds.global_train()
        assert X.shape == (10, 3)
        assert y.shape == (10,)
        Xt, yt = ds.global_test()
        assert Xt.shape[0] == sum(d.num_test for d in devs)

    def test_size_range(self):
        devs = [make_device(0, n_train=4), make_device(1, n_train=9)]
        ds = FederatedDataset(devs, num_features=3, num_classes=2)
        assert ds.size_range() == (4, 9)

    def test_summary_mentions_key_facts(self):
        ds = FederatedDataset([make_device(0)], num_features=3, num_classes=2, name="toy")
        s = ds.summary()
        assert "toy" in s and "1 devices" in s and "3" in s
