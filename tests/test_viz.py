"""Tests for repro.viz."""

import numpy as np

from repro.fl.history import RoundRecord, TrainingHistory
from repro.viz import ascii_chart, history_sparklines, sparkline


def make_history(name, losses):
    h = TrainingHistory(algorithm=name, dataset="toy")
    for i, loss in enumerate(losses, start=1):
        h.append(
            RoundRecord(
                round_index=i, train_loss=loss, grad_norm=1.0,
                test_accuracy=0.5, sim_time=i, wall_time=i * 0.1,
            )
        )
    return h


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_uses_extremes(self):
        s = sparkline([0.0, 1.0, 2.0, 3.0])
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_nan_marked(self):
        s = sparkline([1.0, float("nan"), 2.0])
        assert s[1] == "!"

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "!!!"

    def test_downsampling(self):
        s = sparkline(np.arange(100), width=10)
        assert len(s) == 10
        assert s[0] == "▁" and s[-1] == "█"


class TestHistorySparklines:
    def test_lists_all_runs(self):
        h1 = make_history("fedavg", [3, 2, 1])
        h2 = make_history("fedproxvr", [3, 1.5, 0.5])
        text = history_sparklines([h1, h2])
        assert "fedavg" in text and "fedproxvr" in text
        assert "3 -> 1" in text

    def test_empty_history(self):
        text = history_sparklines([TrainingHistory("x", "toy")])
        assert "no records" in text


class TestAsciiChart:
    def test_contains_bounds_and_legend(self):
        h1 = make_history("fedavg", [3.0, 2.0, 1.0])
        h2 = make_history("vr", [3.0, 1.0, 0.5])
        chart = ascii_chart([h1, h2], height=6, width=20)
        assert "3" in chart and "0.5" in chart
        assert "*=fedavg" in chart and "o=vr" in chart

    def test_no_data(self):
        assert "no finite data" in ascii_chart([TrainingHistory("x", "toy")])

    def test_dimensions(self):
        h = make_history("a", list(np.linspace(5, 1, 30)))
        chart = ascii_chart([h], height=8, width=30)
        # 8 grid rows + 1 legend
        assert len(chart.splitlines()) == 9
