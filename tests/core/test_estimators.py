"""Tests for repro.core.estimators."""

import numpy as np
import pytest

from repro.core.estimators import (
    SARAHEstimator,
    SGDEstimator,
    SVRGEstimator,
    make_estimator,
)
from repro.exceptions import ConfigurationError
from repro.models import LinearRegressionModel


@pytest.fixture()
def problem():
    rng = np.random.default_rng(0)
    model = LinearRegressionModel(5, fit_intercept=False)
    X = rng.standard_normal((40, 5))
    y = rng.standard_normal(40)
    w0 = rng.standard_normal(5)
    return model, X, y, w0


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("sgd", SGDEstimator), ("svrg", SVRGEstimator), ("sarah", SARAHEstimator)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_estimator(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_estimator("SVRG"), SVRGEstimator)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_estimator("adam")


class TestAnchorExactness:
    """At the anchor point, VR estimators must return the full gradient
    exactly — the property (44) the Lemma 1 proof starts from."""

    @pytest.mark.parametrize("name", ["svrg", "sarah"])
    def test_exact_at_anchor(self, name, problem):
        model, X, y, w0 = problem
        full = model.gradient(w0, X, y)
        est = make_estimator(name)
        est.start_epoch(w0, full)
        batch = slice(0, 8)
        v = est.estimate(model, X[batch], y[batch], w0)
        np.testing.assert_allclose(v, full, atol=1e-12)


class TestSVRG:
    def test_unbiasedness(self, problem):
        """E_B[v] equals the full gradient at any w (SVRG's defining
        property), checked by averaging over every size-1 batch."""
        model, X, y, w0 = problem
        full0 = model.gradient(w0, X, y)
        w_t = w0 + 0.3
        est = SVRGEstimator()
        est.start_epoch(w0, full0)
        estimates = []
        for i in range(X.shape[0]):
            # re-anchor so per-sample calls don't mutate state (SVRG is
            # stateless across estimates, so this is belt-and-braces)
            v = est.estimate(model, X[i : i + 1], y[i : i + 1], w_t)
            estimates.append(v)
        mean_v = np.mean(estimates, axis=0)
        np.testing.assert_allclose(mean_v, model.gradient(w_t, X, y), atol=1e-10)

    def test_variance_shrinks_near_anchor(self, problem):
        model, X, y, w0 = problem
        full0 = model.gradient(w0, X, y)

        def variance(w_t):
            est = SVRGEstimator()
            est.start_epoch(w0, full0)
            true = model.gradient(w_t, X, y)
            devs = []
            for i in range(X.shape[0]):
                v = est.estimate(model, X[i : i + 1], y[i : i + 1], w_t)
                devs.append(np.sum((v - true) ** 2))
            return np.mean(devs)

        near = variance(w0 + 1e-3)
        far = variance(w0 + 1.0)
        assert near < far / 100

    def test_estimate_before_start_raises(self, problem):
        model, X, y, w0 = problem
        with pytest.raises(ConfigurationError):
            SVRGEstimator().estimate(model, X[:2], y[:2], w0)

    def test_eval_counter(self, problem):
        model, X, y, w0 = problem
        est = SVRGEstimator()
        est.start_epoch(w0, model.gradient(w0, X, y))
        est.estimate(model, X[:4], y[:4], w0)
        est.estimate(model, X[:4], y[:4], w0)
        assert est.num_evaluations == 4
        est.reset_counter()
        assert est.num_evaluations == 0


class TestSARAH:
    def test_recursion_matches_formula(self, problem):
        model, X, y, w0 = problem
        full0 = model.gradient(w0, X, y)
        est = SARAHEstimator()
        v0 = est.start_epoch(w0, full0)
        w1 = w0 - 0.01 * v0
        batch = slice(3, 9)
        v1 = est.estimate(model, X[batch], y[batch], w1)
        expected = (
            model.gradient(w1, X[batch], y[batch])
            - model.gradient(w0, X[batch], y[batch])
            + full0
        )
        np.testing.assert_allclose(v1, expected, atol=1e-12)

    def test_recursion_tracks_previous_iterate(self, problem):
        """The second step must difference against w1, not w0."""
        model, X, y, w0 = problem
        full0 = model.gradient(w0, X, y)
        est = SARAHEstimator()
        v0 = est.start_epoch(w0, full0)
        w1 = w0 - 0.01 * v0
        v1 = est.estimate(model, X[:5], y[:5], w1)
        w2 = w1 - 0.01 * v1
        v2 = est.estimate(model, X[5:10], y[5:10], w2)
        expected = (
            model.gradient(w2, X[5:10], y[5:10])
            - model.gradient(w1, X[5:10], y[5:10])
            + v1
        )
        np.testing.assert_allclose(v2, expected, atol=1e-12)

    def test_fresh_instances_isolated(self, problem):
        """Two concurrent inner loops must not share recursion state."""
        model, X, y, w0 = problem
        full0 = model.gradient(w0, X, y)
        a, b = SARAHEstimator(), SARAHEstimator()
        a.start_epoch(w0, full0)
        b.start_epoch(w0 + 1.0, model.gradient(w0 + 1.0, X, y))
        va = a.estimate(model, X[:5], y[:5], w0 + 0.1)
        # interleaved call on b must not affect a's next estimate
        b.estimate(model, X[:5], y[:5], w0 + 2.0)
        va2_expected = (
            model.gradient(w0 + 0.2, X[5:8], y[5:8])
            - model.gradient(w0 + 0.1, X[5:8], y[5:8])
            + va
        )
        va2 = a.estimate(model, X[5:8], y[5:8], w0 + 0.2)
        np.testing.assert_allclose(va2, va2_expected, atol=1e-12)

    def test_estimate_before_start_raises(self, problem):
        model, X, y, w0 = problem
        with pytest.raises(ConfigurationError):
            SARAHEstimator().estimate(model, X[:2], y[:2], w0)


class TestSGD:
    def test_plain_minibatch_gradient(self, problem):
        model, X, y, w0 = problem
        est = SGDEstimator()
        est.start_epoch(w0, model.gradient(w0, X, y))
        w_t = w0 + 0.5
        v = est.estimate(model, X[:7], y[:7], w_t)
        np.testing.assert_allclose(v, model.gradient(w_t, X[:7], y[:7]))

    def test_start_epoch_returns_copy(self, problem):
        model, X, y, w0 = problem
        full = model.gradient(w0, X, y)
        est = SGDEstimator()
        v = est.start_epoch(w0, full)
        v[...] = 0.0
        assert full.any()  # caller's array untouched


class TestBatchedEstimators:
    """Stacked estimator recursions: each row must follow the same
    SVRG/SARAH recursion as a per-client sequential estimator."""

    def _stacks(self, seed=0, K=4, D=6):
        rng = np.random.default_rng(seed)
        W0 = rng.standard_normal((K, D))
        full = rng.standard_normal((K, D))
        return W0, full

    def test_factory_maps_sequential_classes(self):
        from repro.core.estimators import (
            BatchedSARAHEstimator,
            BatchedSGDEstimator,
            BatchedSVRGEstimator,
            make_batched_estimator,
        )

        assert isinstance(make_batched_estimator(SVRGEstimator), BatchedSVRGEstimator)
        assert isinstance(make_batched_estimator(SARAHEstimator), BatchedSARAHEstimator)
        assert isinstance(make_batched_estimator(SGDEstimator), BatchedSGDEstimator)

    def test_factory_rejects_unknown(self):
        from repro.core.estimators import GradientEstimator, make_batched_estimator
        from repro.exceptions import ConfigurationError

        class Custom(GradientEstimator):
            name = "custom"

            def start_epoch(self, w0, full_grad):
                return full_grad

            def estimate(self, model, X, y, w):
                return w

        with pytest.raises(ConfigurationError):
            make_batched_estimator(Custom)

    def test_start_epoch_returns_anchor_gradients(self):
        from repro.core.estimators import make_batched_estimator

        for cls in (SVRGEstimator, SARAHEstimator, SGDEstimator):
            W0, full = self._stacks()
            est = make_batched_estimator(cls)
            np.testing.assert_array_equal(est.start_epoch(W0, full), full)

    def test_rowwise_matches_sequential_recursion(self):
        """Drive batched and sequential estimators with the same gradient
        oracle and compare rows bitwise over several steps."""
        from repro.core.estimators import make_batched_estimator
        from repro.models import MultinomialLogisticModel
        from repro.models.batched import make_batch_kernel

        rng = np.random.default_rng(7)
        K, B, f, c = 3, 5, 4, 3
        models = [MultinomialLogisticModel(f, c, l2=0.01) for _ in range(K)]
        kernel = make_batch_kernel(models)
        D = models[0].num_parameters
        W0 = rng.standard_normal((K, D))
        full = np.stack([
            models[k].gradient(W0[k], rng.standard_normal((8, f)),
                               rng.integers(0, c, 8).astype(float))
            for k in range(K)
        ])

        for cls in (SVRGEstimator, SARAHEstimator, SGDEstimator):
            batched = make_batched_estimator(cls)
            seq = [cls() for _ in range(K)]
            V = batched.start_epoch(W0, full)
            for k in range(K):
                seq[k].start_epoch(W0[k].copy(), full[k].copy())
            W = W0 - 0.1 * V
            for _ in range(3):
                X = rng.standard_normal((K, B, f))
                y = rng.integers(0, c, size=(K, B)).astype(np.float64)
                V = batched.estimate(kernel, X, y, W)
                for k in range(K):
                    v_k = seq[k].estimate(models[k], X[k], y[k], W[k])
                    np.testing.assert_array_equal(V[k], v_k, err_msg=cls.__name__)
                assert batched.num_evaluations == seq[0].num_evaluations
                W = W - 0.1 * V
