"""Tests for certificates, FSVRG, best_mu_for_theta, and the CLI."""

import numpy as np
import pytest

from repro.core import theory
from repro.core.certificates import (
    EmpiricalConstants,
    certificate_report,
    estimate_delta0,
    estimate_sigma_bar_sq,
    measure_constants,
    predicted_global_iterations,
)
from repro.fl.fsvrg import run_fsvrg
from repro.core.theory import ProblemConstants
from repro.cli import build_dataset, build_model_factory, main
from repro.exceptions import ConfigurationError, InfeasibleParametersError
from repro.fl.runner import FederatedRunConfig
from repro.models import MultinomialLogisticModel


class TestBestMuForTheta:
    CONST = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=0.0)

    def test_returns_positive_factor(self):
        mu = theory.best_mu_for_theta(0.1, self.CONST)
        assert theory.federated_factor(0.1, mu, self.CONST) > 0

    def test_is_a_maximum(self):
        mu = theory.best_mu_for_theta(0.1, self.CONST)
        best = theory.federated_factor(0.1, mu, self.CONST)
        assert theory.federated_factor(0.1, mu * 1.2, self.CONST) <= best + 1e-12
        assert theory.federated_factor(0.1, mu * 0.8, self.CONST) <= best + 1e-12

    def test_infeasible_theta_raises(self):
        cap = theory.theta_accuracy_cap(0.0)
        with pytest.raises(InfeasibleParametersError):
            theory.best_mu_for_theta(cap * 1.05, self.CONST)


class TestCertificates:
    def test_measure_constants_on_convex_federation(self, tiny_dataset):
        model = MultinomialLogisticModel(
            tiny_dataset.num_features, tiny_dataset.num_classes
        )
        consts = measure_constants(model, tiny_dataset, seed=0)
        assert consts.L > 0
        assert consts.lam == pytest.approx(0.0, abs=1e-4)  # convex model
        assert consts.sigma_bar_sq > 0  # heterogeneous federation
        assert consts.delta0 > 0

    def test_sigma_estimate_zero_for_identical_devices(self, tiny_dataset):
        from repro.datasets.base import DeviceData, FederatedDataset

        rng = np.random.default_rng(0)
        X = rng.standard_normal((20, 4))
        y = rng.integers(0, 3, 20)
        devices = [
            DeviceData(i, X.copy(), y.copy(), np.zeros((0, 4)), np.zeros(0))
            for i in range(3)
        ]
        ds = FederatedDataset(devices, num_features=4, num_classes=3)
        model = MultinomialLogisticModel(4, 3)
        w = model.init_parameters(0)
        assert estimate_sigma_bar_sq(model, ds, [w]) == pytest.approx(0.0, abs=1e-18)

    def test_delta0_nonnegative_and_reasonable(self, tiny_dataset):
        model = MultinomialLogisticModel(
            tiny_dataset.num_features, tiny_dataset.num_classes
        )
        w0 = model.init_parameters(0)
        X, y = tiny_dataset.global_train()
        delta = estimate_delta0(model, tiny_dataset, w0, optimizer_steps=100)
        assert 0 <= delta <= model.loss(w0, X, y)

    def test_predicted_iterations_positive(self):
        consts = EmpiricalConstants(L=1.0, lam=0.1, sigma_bar_sq=0.5, delta0=2.0)
        mu = theory.best_mu_for_theta(0.05, consts.to_problem_constants())
        T = predicted_global_iterations(consts, theta=0.05, mu=mu, eps=0.01)
        assert T > 0

    def test_report_mentions_all_constants(self):
        consts = EmpiricalConstants(L=2.0, lam=0.1, sigma_bar_sq=0.5, delta0=1.0)
        text = certificate_report(consts, theta=0.05, mu=50.0, eps=0.01)
        for token in ("L", "lambda", "sigma_bar^2", "Delta", "Theta"):
            assert token in text

    def test_report_handles_infeasible(self):
        consts = EmpiricalConstants(L=2.0, lam=0.1, sigma_bar_sq=0.5, delta0=1.0)
        text = certificate_report(consts, theta=0.9, mu=0.2, eps=0.01)
        assert "no guarantee" in text


class TestFSVRG:
    def test_converges(self, tiny_dataset, tiny_model_factory):
        cfg = FederatedRunConfig(
            num_rounds=15, num_local_steps=8, beta=5.0, batch_size=8,
            seed=2, eval_every=5,
        )
        history, w = run_fsvrg(tiny_dataset, tiny_model_factory, cfg)
        assert history.algorithm == "fsvrg"
        assert history.final("train_loss") < history.records[0].train_loss
        assert w.shape == (tiny_model_factory().num_parameters,)

    def test_reproducible(self, tiny_dataset, tiny_model_factory):
        cfg = FederatedRunConfig(num_rounds=4, num_local_steps=4, seed=5)
        _, w1 = run_fsvrg(tiny_dataset, tiny_model_factory, cfg)
        _, w2 = run_fsvrg(tiny_dataset, tiny_model_factory, cfg)
        np.testing.assert_array_equal(w1, w2)

    def test_history_config_recorded(self, tiny_dataset, tiny_model_factory):
        cfg = FederatedRunConfig(num_rounds=3, num_local_steps=2, beta=7.0, seed=0)
        history, _ = run_fsvrg(tiny_dataset, tiny_model_factory, cfg)
        assert history.config["beta"] == 7.0
        assert history.config["algorithm"] == "fsvrg"


class TestCLI:
    def test_build_dataset_names(self):
        ds = build_dataset("synthetic", num_devices=4, num_samples=200, seed=0)
        assert ds.num_devices == 4
        with pytest.raises(ConfigurationError):
            build_dataset("imagenet", num_devices=4, num_samples=200, seed=0)

    def test_build_model_factory(self):
        ds = build_dataset("synthetic", num_devices=4, num_samples=200, seed=0)
        model = build_model_factory("mlr", ds)()
        assert model.num_parameters > 0
        with pytest.raises(ConfigurationError):
            build_model_factory("transformer", ds)

    def test_cnn_requires_square_features(self):
        ds = build_dataset("synthetic", num_devices=4, num_samples=200, seed=0)
        # synthetic has 60 features: not a square image
        with pytest.raises(ConfigurationError):
            build_model_factory("cnn", ds)

    def test_theory_command(self, capsys):
        code = main(["theory", "--beta", "10", "--theta", "0.1", "--mu", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Lemma 1" in out and "Theorem 1" in out

    def test_optimize_command(self, capsys):
        code = main(["optimize", "--points", "2"])
        assert code == 0
        assert "beta*" in capsys.readouterr().out

    def test_run_command_small(self, capsys, tmp_path):
        out_path = tmp_path / "history.json"
        code = main([
            "run", "--dataset", "synthetic", "--devices", "4",
            "--rounds", "3", "--tau", "2", "--eval-every", "3",
            "--output", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()

    def test_compare_command_small(self, capsys):
        code = main([
            "compare", "--dataset", "synthetic", "--devices", "4",
            "--rounds", "3", "--tau", "2", "--eval-every", "3",
            "--algorithms", "fedavg", "fedproxvr-svrg",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "fedproxvr-svrg" in out

    def test_error_exit_code(self, capsys):
        code = main([
            "run", "--dataset", "synthetic", "--devices", "4",
            "--rounds", "3", "--tau", "2", "--algorithm", "nope",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err
