"""Tests for repro.core.proximal."""

import numpy as np
import pytest

from repro.core.proximal import (
    IdentityProx,
    L1Prox,
    QuadraticProx,
    gradient_mapping,
)


class TestQuadraticProx:
    def test_closed_form_matches_argmin(self):
        """prox must solve argmin_w h(w) + ||w - x||^2/(2 eta): verify the
        first-order optimality condition mu(w - anchor) + (w - x)/eta = 0."""
        rng = np.random.default_rng(0)
        anchor = rng.standard_normal(6)
        x = rng.standard_normal(6)
        mu, eta = 2.5, 0.3
        prox = QuadraticProx(mu, anchor)
        w = prox(x, eta)
        residual = mu * (w - anchor) + (w - x) / eta
        np.testing.assert_allclose(residual, 0.0, atol=1e-12)

    def test_paper_formula_eq10(self):
        anchor = np.array([1.0, -1.0])
        x = np.array([3.0, 3.0])
        mu, eta = 4.0, 0.5
        prox = QuadraticProx(mu, anchor)
        expected = (eta / (1 + eta * mu)) * (mu * anchor + x / eta)
        np.testing.assert_allclose(prox(x, eta), expected)

    def test_anchor_is_fixed_point(self):
        anchor = np.array([2.0, -3.0])
        prox = QuadraticProx(1.0, anchor)
        np.testing.assert_allclose(prox(anchor, 0.7), anchor)

    def test_mu_zero_is_identity(self):
        x = np.array([5.0, -5.0])
        prox = QuadraticProx(0.0, np.zeros(2))
        np.testing.assert_allclose(prox(x, 0.1), x)
        assert prox.value(x) == 0.0

    def test_pulls_toward_anchor(self):
        anchor = np.zeros(3)
        x = np.array([1.0, 2.0, 3.0])
        out = QuadraticProx(10.0, anchor)(x, 1.0)
        assert np.all(np.abs(out) < np.abs(x))

    def test_value_and_gradient(self):
        anchor = np.array([1.0, 1.0])
        prox = QuadraticProx(2.0, anchor)
        w = np.array([3.0, 1.0])
        assert prox.value(w) == pytest.approx(0.5 * 2.0 * 4.0)
        np.testing.assert_allclose(prox.gradient(w), [4.0, 0.0])

    def test_nonexpansive(self):
        rng = np.random.default_rng(1)
        prox = QuadraticProx(3.0, rng.standard_normal(4))
        x, z = rng.standard_normal(4), rng.standard_normal(4)
        assert np.linalg.norm(prox(x, 0.2) - prox(z, 0.2)) <= np.linalg.norm(x - z) + 1e-12


class TestIdentityProx:
    def test_identity(self):
        x = np.array([1.0, -2.0])
        prox = IdentityProx()
        np.testing.assert_allclose(prox(x, 0.5), x)
        assert prox.value(x) == 0.0


class TestL1Prox:
    def test_soft_threshold_values(self):
        prox = L1Prox(1.0)
        x = np.array([3.0, -0.5, 0.0, -2.0])
        np.testing.assert_allclose(prox(x, 1.0), [2.0, 0.0, 0.0, -1.0])

    def test_threshold_scales_with_eta(self):
        prox = L1Prox(2.0)
        x = np.array([1.0])
        np.testing.assert_allclose(prox(x, 0.25), [0.5])

    def test_value(self):
        assert L1Prox(0.5).value(np.array([2.0, -3.0])) == pytest.approx(2.5)

    def test_optimality_condition(self):
        """Soft-thresholding solves argmin lam|w| + (w-x)^2/(2 eta):
        check subgradient optimality on non-zero coordinates."""
        prox = L1Prox(0.7)
        x = np.array([2.0, -5.0])
        eta = 0.4
        w = prox(x, eta)
        # for w != 0: lam*sign(w) + (w - x)/eta == 0
        residual = 0.7 * np.sign(w) + (w - x) / eta
        np.testing.assert_allclose(residual, 0.0, atol=1e-12)


class TestGradientMapping:
    def test_identity_prox_reduces_to_gradient(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal(5)
        g = rng.standard_normal(5)
        gm = gradient_mapping(w, g, IdentityProx(), 0.3)
        np.testing.assert_allclose(gm, g)

    def test_zero_at_stationary_point_of_surrogate(self):
        """G(w) = 0 iff w minimizes F + h: construct such a point for
        quadratic F and quadratic h and verify."""
        # F(w) = 0.5||w - a||^2, h(w) = (mu/2)||w - b||^2
        a = np.array([2.0, 0.0])
        b = np.array([0.0, 2.0])
        mu = 3.0
        w_star = (a + mu * b) / (1 + mu)
        grad_F = w_star - a
        gm = gradient_mapping(w_star, grad_F, QuadraticProx(mu, b), 0.1)
        np.testing.assert_allclose(gm, 0.0, atol=1e-12)

    def test_eta_validated(self):
        with pytest.raises(Exception):
            gradient_mapping(np.zeros(2), np.zeros(2), IdentityProx(), 0.0)
