"""Tests for the pFedMe-style personalized solver."""

import numpy as np
import pytest

from repro.core.algorithms import make_local_solver
from repro.core.local import PersonalizedProxLocalSolver
from repro.models import MultinomialLogisticModel


@pytest.fixture()
def problem():
    rng = np.random.default_rng(0)
    model = MultinomialLogisticModel(8, 3)
    X = rng.standard_normal((50, 8))
    y = rng.integers(0, 3, 50)
    w0 = model.init_parameters(0)
    L = model.smoothness(X)
    return model, X, y, w0, L


class TestPersonalizedSolver:
    def test_output_between_global_and_personalized(self, problem):
        model, X, y, w0, L = problem
        solver = PersonalizedProxLocalSolver(
            step_size=1.0 / (5 * L), num_steps=20, batch_size=16,
            mu=1.0, global_lr=0.5,
        )
        result = solver.solve(model, X, y, w0, np.random.default_rng(1))
        theta = solver.last_personalized
        # w_local = (1 - s) w0 + s theta with s = 0.5
        expected = 0.5 * w0 + 0.5 * theta
        np.testing.assert_allclose(result.w_local, expected)

    def test_personalized_model_fits_local_data_better(self, problem):
        model, X, y, w0, L = problem
        solver = PersonalizedProxLocalSolver(
            step_size=1.0 / (5 * L), num_steps=100, batch_size=16, mu=0.5,
        )
        theta = solver.personalized_model(model, X, y, w0, np.random.default_rng(2))
        assert model.loss(theta, X, y) < model.loss(w0, X, y)

    def test_large_mu_keeps_theta_close(self, problem):
        model, X, y, w0, L = problem

        def distance(mu):
            solver = PersonalizedProxLocalSolver(
                step_size=1.0 / (5 * L), num_steps=30, batch_size=16,
                mu=mu, global_lr=1.0 / mu,
            )
            theta = solver.personalized_model(
                model, X, y, w0, np.random.default_rng(3)
            )
            return float(np.linalg.norm(theta - w0))

        assert distance(10.0) < distance(0.1)

    def test_diagnostics_include_distance(self, problem):
        model, X, y, w0, L = problem
        solver = PersonalizedProxLocalSolver(
            step_size=1.0 / (5 * L), num_steps=5, batch_size=16, mu=1.0,
        )
        result = solver.solve(model, X, y, w0, np.random.default_rng(4))
        assert result.diagnostics["personalized_distance"] >= 0

    def test_global_lr_mu_product_validated(self):
        with pytest.raises(Exception):
            PersonalizedProxLocalSolver(
                step_size=0.1, num_steps=5, batch_size=8, mu=4.0, global_lr=1.0
            )

    def test_factory_builds_pfedme(self):
        solver = make_local_solver(
            "pfedme", step_size=0.1, num_steps=3, batch_size=4, mu=0.5
        )
        assert isinstance(solver, PersonalizedProxLocalSolver)
        assert solver.name == "pfedme"

    def test_factory_defaults_mu_when_zero(self):
        solver = make_local_solver(
            "pfedme", step_size=0.1, num_steps=3, batch_size=4, mu=0.0
        )
        assert solver.mu == 1.0

    def test_federated_training_converges(self, tiny_dataset, tiny_model_factory):
        from repro.fl.runner import FederatedRunConfig, run_federated

        cfg = FederatedRunConfig(
            algorithm="pfedme", num_rounds=15, num_local_steps=10,
            beta=5.0, mu=1.0, batch_size=8, seed=0, eval_every=5,
            solver_kwargs={"global_lr": 0.9},
        )
        history, _ = run_federated(tiny_dataset, tiny_model_factory, cfg)
        assert history.final("train_loss") < history.records[0].train_loss
