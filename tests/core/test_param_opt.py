"""Tests for repro.core.param_opt (§4.3 / Fig. 1)."""

import math

import numpy as np
import pytest

from repro.core import theory
from repro.core.param_opt import (
    OptimalParameters,
    objective,
    optimize_parameters,
    recommend_run_config,
    sweep_gamma,
)
from repro.core.theory import ProblemConstants
from repro.exceptions import InfeasibleParametersError

CONST = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=0.0)


class TestObjective:
    def test_infinite_outside_beta_region(self):
        assert objective(2.0, 5.0, 0.01, CONST) == math.inf

    def test_infinite_when_mu_below_lambda(self):
        assert objective(10.0, 0.4, 0.01, CONST) == math.inf

    def test_infinite_when_factor_nonpositive(self):
        # tiny mu barely above lambda cannot make Theta positive
        assert objective(10.0, 0.51, 0.01, CONST) == math.inf

    def test_finite_at_feasible_point(self):
        val = objective(20.0, 15.0, 0.01, CONST)
        assert math.isfinite(val) and val > 0

    def test_matches_manual_computation(self):
        beta, mu, gamma = 20.0, 15.0, 0.01
        theta = theory.theta_from_beta(mu, beta, CONST)
        factor = theory.federated_factor(theta, mu, CONST)
        tau = theory.tau_upper_bound_sarah(beta)
        assert objective(beta, mu, gamma, CONST) == pytest.approx(
            (1 + gamma * tau) / factor
        )


class TestOptimizeParameters:
    def test_returns_feasible_optimum(self):
        opt = optimize_parameters(0.01, CONST)
        assert isinstance(opt, OptimalParameters)
        assert opt.beta > 3
        assert opt.mu > CONST.lam
        assert 0 < opt.theta < 1
        assert opt.federated_factor > 0
        assert math.isfinite(opt.objective)

    def test_polish_improves_or_matches_grid(self):
        raw = optimize_parameters(0.01, CONST, polish=False)
        polished = optimize_parameters(0.01, CONST, polish=True)
        assert polished.objective <= raw.objective + 1e-12

    def test_optimum_is_local_minimum(self):
        opt = optimize_parameters(0.05, CONST)
        base = opt.objective
        for db, dm in [(1.05, 1.0), (0.95, 1.0), (1.0, 1.05), (1.0, 0.95)]:
            val = objective(opt.beta * db, opt.mu * dm, 0.05, CONST)
            assert val >= base - 1e-9

    def test_gamma_validated(self):
        with pytest.raises(Exception):
            optimize_parameters(0.0, CONST)

    def test_infeasible_grid_raises(self):
        bad_grid = np.array([3.5])  # beta too small for Theta > 0 anywhere
        with pytest.raises(InfeasibleParametersError):
            optimize_parameters(
                0.01, CONST, beta_grid=bad_grid, mu_grid=np.array([0.6]), polish=False
            )

    def test_as_row_contains_fields(self):
        opt = optimize_parameters(0.01, CONST)
        row = opt.as_row()
        for token in ("gamma", "beta*", "mu*", "theta*", "Theta*"):
            assert token in row


class TestFig1Shapes:
    """The qualitative claims of §4.3 / Fig. 1."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_gamma(np.geomspace(1e-4, 1.0, 5), CONST)

    def test_beta_decreases_with_gamma(self, sweep):
        betas = [o.beta for o in sweep]
        assert betas[0] > betas[-1]
        assert all(b1 >= b2 * 0.99 for b1, b2 in zip(betas, betas[1:]))

    def test_tau_decreases_with_gamma(self, sweep):
        taus = [o.tau for o in sweep]
        assert taus[0] > taus[-1]

    def test_mu_increases_with_gamma(self, sweep):
        mus = [o.mu for o in sweep]
        assert mus[-1] > mus[0]

    def test_theta_increases_with_gamma(self, sweep):
        thetas = [o.theta for o in sweep]
        assert thetas[-1] > thetas[0]

    def test_heterogeneity_raises_optimal_mu_and_lowers_theta(self):
        het = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=2.0)
        o_hom = optimize_parameters(0.01, CONST)
        o_het = optimize_parameters(0.01, het)
        assert o_het.mu > o_hom.mu
        assert o_het.theta < o_hom.theta
        assert o_het.federated_factor < o_hom.federated_factor


class TestRecommendRunConfig:
    def test_fields_present_and_consistent(self):
        rec = recommend_run_config(0.01, CONST)
        assert rec["tau"] >= 1
        assert rec["eta_times_L"] == pytest.approx(1.0 / rec["beta"])
        assert rec["federated_factor"] > 0

    def test_integer_tau_by_default(self):
        rec = recommend_run_config(0.01, CONST)
        assert isinstance(rec["tau"], int)

    def test_float_tau_optional(self):
        rec = recommend_run_config(0.01, CONST, round_to_int_tau=False)
        assert isinstance(rec["tau"], float)
