"""Edge-path tests for the tuning harness: divergent trials, ties."""

import numpy as np
import pytest

from repro.fl.tuning import SearchReport, TrialResult, format_table


def trial(acc, loss=1.0, params=None):
    return TrialResult(
        algorithm="x",
        params=params or {"tau": 5, "beta": 5.0, "mu": 0.0, "batch_size": 16},
        best_accuracy=acc,
        final_loss=loss,
        rounds_to_best=1,
    )


class TestBestSelection:
    def test_highest_accuracy_wins(self):
        report = SearchReport("x", [trial(0.5), trial(0.8), trial(0.6)])
        assert report.best.best_accuracy == 0.8

    def test_nan_accuracy_never_wins(self):
        report = SearchReport("x", [trial(float("nan")), trial(0.3)])
        assert report.best.best_accuracy == 0.3

    def test_all_nan_still_returns_something(self):
        report = SearchReport("x", [trial(float("nan")), trial(float("nan"))])
        assert report.best is not None

    def test_tie_broken_by_lower_loss(self):
        a = trial(0.7, loss=2.0)
        b = trial(0.7, loss=1.0)
        report = SearchReport("x", [a, b])
        assert report.best is b

    def test_infinite_loss_loses_tie(self):
        a = trial(0.7, loss=float("inf"))
        b = trial(0.7, loss=1.5)
        assert SearchReport("x", [a, b]).best is b


class TestTableFormatting:
    def test_row_includes_all_params(self):
        report = SearchReport(
            "fedproxvr-svrg",
            [trial(0.84, params={"tau": 20, "beta": 10.0, "mu": 0.1, "batch_size": 32})],
        )
        row = report.table_row()
        for token in ("tau= 20", "beta= 10.0", "mu=0.1", "B= 32", "84.00%"):
            assert token in row, row

    def test_format_table_header_and_rows(self):
        r1 = SearchReport("fedavg", [trial(0.5)])
        r2 = SearchReport("fedproxvr-sarah", [trial(0.6)])
        text = format_table([r1, r2], "My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1].startswith("-")
        assert "fedavg" in lines[2]
        assert "fedproxvr-sarah" in lines[3]
