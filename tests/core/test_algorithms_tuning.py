"""Tests for the algorithm factory and the random-search harness."""

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHMS, make_local_solver
from repro.core.local import (
    FedAvgLocalSolver,
    FedProxLocalSolver,
    FedProxVRLocalSolver,
    GDLocalSolver,
)
from repro.fl.tuning import (
    SearchSpace,
    compare_algorithms,
    format_table,
    random_search,
)
from repro.exceptions import ConfigurationError
from repro.fl.runner import FederatedRunConfig


class TestAlgorithmFactory:
    def test_registry_contains_paper_algorithms(self):
        for name in ("fedavg", "fedprox", "fedproxvr-svrg", "fedproxvr-sarah", "gd"):
            assert name in ALGORITHMS

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fedavg", FedAvgLocalSolver),
            ("fedprox", FedProxLocalSolver),
            ("fedproxvr-svrg", FedProxVRLocalSolver),
            ("fedproxvr-sarah", FedProxVRLocalSolver),
            ("gd", GDLocalSolver),
        ],
    )
    def test_builds_right_class(self, name, cls):
        solver = make_local_solver(
            name, step_size=0.1, num_steps=5, batch_size=8, mu=0.1
        )
        assert isinstance(solver, cls)

    def test_estimator_wired(self):
        svrg = make_local_solver(
            "fedproxvr-svrg", step_size=0.1, num_steps=5, batch_size=8, mu=0.1
        )
        sarah = make_local_solver(
            "fedproxvr-sarah", step_size=0.1, num_steps=5, batch_size=8, mu=0.1
        )
        assert svrg.name == "fedproxvr-svrg"
        assert sarah.name == "fedproxvr-sarah"

    def test_kwargs_forwarded_to_proxvr(self):
        solver = make_local_solver(
            "fedproxvr-sarah",
            step_size=0.1,
            num_steps=5,
            batch_size=8,
            mu=0.1,
            iterate_selection="average",
        )
        assert solver.iterate_selection == "average"

    def test_case_insensitive(self):
        assert isinstance(
            make_local_solver("FedAvg", step_size=0.1, num_steps=1, batch_size=4),
            FedAvgLocalSolver,
        )

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_local_solver("adamw", step_size=0.1, num_steps=1, batch_size=4)


class TestSearchSpace:
    def test_sample_within_grid(self):
        space = SearchSpace(tau=(5,), beta=(4.0, 8.0), mu=(0.0,), batch_size=(16,))
        rng = np.random.default_rng(0)
        for _ in range(10):
            params = space.sample(rng)
            assert params["tau"] == 5
            assert params["beta"] in (4.0, 8.0)
            assert params["mu"] == 0.0
            assert params["batch_size"] == 16

    def test_size(self):
        space = SearchSpace(tau=(1, 2), beta=(3.5,), mu=(0.0, 0.1, 0.2), batch_size=(8,))
        assert space.size() == 6


class TestRandomSearch:
    SPACE = SearchSpace(tau=(3, 5), beta=(5.0,), mu=(0.0, 0.1), batch_size=(8,))

    def test_reports_best(self, tiny_dataset, tiny_model_factory):
        report = random_search(
            "fedproxvr-sarah",
            tiny_dataset,
            tiny_model_factory,
            space=self.SPACE,
            num_trials=3,
            num_rounds=4,
            seed=0,
        )
        assert len(report.trials) == 3
        best = report.best
        assert best.best_accuracy == max(t.best_accuracy for t in report.trials)

    def test_mu_pinned_for_fedavg(self, tiny_dataset, tiny_model_factory):
        report = random_search(
            "fedavg",
            tiny_dataset,
            tiny_model_factory,
            space=self.SPACE,
            num_trials=3,
            num_rounds=3,
            seed=1,
            mu_always_zero=True,
        )
        assert all(t.params["mu"] == 0.0 for t in report.trials)

    def test_deduplicates_configs(self, tiny_dataset, tiny_model_factory):
        # grid has 4 configs; asking for 4 trials must yield 4 distinct ones
        report = random_search(
            "fedavg",
            tiny_dataset,
            tiny_model_factory,
            space=self.SPACE,
            num_trials=4,
            num_rounds=2,
            seed=2,
            mu_always_zero=False,
        )
        keys = {tuple(sorted(t.params.items())) for t in report.trials}
        assert len(keys) == len(report.trials)

    def test_histories_kept_on_request(self, tiny_dataset, tiny_model_factory):
        report = random_search(
            "fedavg",
            tiny_dataset,
            tiny_model_factory,
            space=self.SPACE,
            num_trials=1,
            num_rounds=2,
            seed=3,
            keep_histories=True,
        )
        assert report.trials[0].history is not None

    def test_empty_report_best_raises(self):
        from repro.fl.tuning import SearchReport

        with pytest.raises(ConfigurationError):
            SearchReport(algorithm="x").best

    def test_base_config_respected(self, tiny_dataset, tiny_model_factory):
        base = FederatedRunConfig(seed=42, eval_every=2)
        report = random_search(
            "fedavg",
            tiny_dataset,
            tiny_model_factory,
            space=self.SPACE,
            num_trials=1,
            num_rounds=4,
            base_config=base,
            seed=4,
            keep_histories=True,
        )
        assert report.trials[0].history.config["seed"] == 42


class TestCompareAndFormat:
    def test_compare_algorithms_table(self, tiny_dataset, tiny_model_factory):
        reports = compare_algorithms(
            ["fedavg", "fedproxvr-svrg"],
            tiny_dataset,
            tiny_model_factory,
            space=TestRandomSearch.SPACE,
            num_trials=2,
            num_rounds=3,
            seed=5,
        )
        table = format_table(reports, "Toy comparison")
        assert "fedavg" in table
        assert "fedproxvr-svrg" in table
        assert "acc=" in table
        # fedavg row must show mu=0 (pinned)
        fedavg_row = [l for l in table.splitlines() if "fedavg" in l][0]
        assert "mu=0 " in fedavg_row or "mu=0.0" in fedavg_row or "mu=0" in fedavg_row
