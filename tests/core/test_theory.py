"""Tests for repro.core.theory (Lemma 1, Theorem 1, Corollary 1)."""

import math

import pytest

from repro.core import theory
from repro.core.theory import ProblemConstants
from repro.exceptions import InfeasibleParametersError


CONST = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=0.0)


class TestProblemConstants:
    def test_mu_tilde(self):
        assert CONST.mu_tilde(2.0) == pytest.approx(1.5)

    def test_mu_must_exceed_lambda(self):
        with pytest.raises(InfeasibleParametersError):
            CONST.mu_tilde(0.5)

    def test_validation(self):
        with pytest.raises(Exception):
            ProblemConstants(L=0.0, lam=0.1)
        with pytest.raises(Exception):
            ProblemConstants(L=1.0, lam=-0.1)


class TestLemma1Bounds:
    def test_lower_bound_formula(self):
        beta, theta, mu = 10.0, 0.5, 2.0
        expected = 3 * (beta**2 + mu**2) / (theta**2 * 1.5 * (beta - 3))
        assert theory.tau_lower_bound(beta, theta, mu, CONST) == pytest.approx(expected)

    def test_lower_bound_grows_as_theta_shrinks(self):
        """Remark 1(2): tau = Omega(1/theta^2)."""
        lo1 = theory.tau_lower_bound(10, 0.5, 2.0, CONST)
        lo2 = theory.tau_lower_bound(10, 0.25, 2.0, CONST)
        assert lo2 == pytest.approx(4 * lo1)

    def test_lower_bound_grows_with_mu(self):
        """Remark 1(4): larger mu makes local convergence slower.

        Note mu enters both the numerator (mu^2) and mu~ = mu - lam; the
        Omega(mu) growth dominates for large mu."""
        assert theory.tau_lower_bound(10, 0.5, 50.0, CONST) > theory.tau_lower_bound(
            10, 0.5, 5.0, CONST
        )

    def test_beta_at_most_3_infeasible(self):
        with pytest.raises(InfeasibleParametersError):
            theory.tau_lower_bound(3.0, 0.5, 2.0, CONST)

    def test_sarah_upper_bound(self):
        assert theory.tau_upper_bound_sarah(10.0) == pytest.approx((500 - 40) / 8)

    def test_svrg_min_a_satisfies_condition(self):
        for tau in (0, 1, 5, 50):
            a = theory.svrg_min_a(tau)
            assert a - 4 >= 4 * math.sqrt(a * (tau + 1)) - 1e-9

    def test_svrg_min_a_is_tight(self):
        for tau in (0, 3, 20):
            a = theory.svrg_min_a(tau) * 0.999
            assert a - 4 < 4 * math.sqrt(a * (tau + 1))

    def test_svrg_upper_with_explicit_a(self):
        assert theory.tau_upper_bound_svrg(10.0, a=2.0) == pytest.approx(
            460 / 16 - 2
        )

    def test_svrg_self_consistent_bound(self):
        beta = 30.0
        tau = theory.tau_upper_bound_svrg(beta)
        assert tau >= 1
        # feasibility at the returned tau
        a = theory.svrg_min_a(tau)
        assert tau <= (5 * beta**2 - 4 * beta) / (8 * a) - 2 + 1e-9

    def test_svrg_stricter_than_sarah(self):
        """Remark 1(5): SVRG admits far fewer local iterations."""
        for beta in (10.0, 30.0, 100.0):
            assert theory.tau_upper_bound_svrg(beta) < theory.tau_upper_bound_sarah(
                beta
            )


class TestLemma1Feasibility:
    def test_feasible_point(self):
        # Just above beta_min the feasible tau-interval is non-empty;
        # pick its midpoint (the lower bound keeps growing with beta, so
        # tau*(beta_min) itself is NOT feasible at a larger beta).
        beta = theory.beta_min(0.5, 2.0, CONST) * 1.05
        lo = theory.tau_lower_bound(beta, 0.5, 2.0, CONST)
        hi = theory.tau_upper_bound_sarah(beta)
        assert lo < hi
        assert theory.lemma1_feasible(beta, 0.5 * (lo + hi), 0.5, 2.0, CONST)

    def test_beta_below_3_infeasible(self):
        assert not theory.lemma1_feasible(2.0, 10, 0.5, 2.0, CONST)

    def test_tau_above_upper_infeasible(self):
        beta = 10.0
        hi = theory.tau_upper_bound_sarah(beta)
        assert not theory.lemma1_feasible(beta, hi * 2, 0.9, 2.0, CONST)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(InfeasibleParametersError):
            theory.lemma1_feasible(10, 10, 0.5, 2.0, CONST, estimator="adam")


class TestBetaMin:
    def test_bounds_meet_at_beta_min(self):
        beta = theory.beta_min(0.5, 2.0, CONST)
        lo = theory.tau_lower_bound(beta, 0.5, 2.0, CONST)
        hi = theory.tau_upper_bound_sarah(beta)
        assert lo == pytest.approx(hi, rel=1e-6)

    def test_beta_min_grows_as_theta_shrinks(self):
        """Remark 1(1)-(2): tighter accuracy needs smaller step size."""
        assert theory.beta_min(0.1, 2.0, CONST) > theory.beta_min(0.5, 2.0, CONST)

    def test_svrg_beta_min_larger_than_sarah(self):
        """Remark 1(5): SVRG requires a larger beta_min.

        SVRG's self-consistent upper bound grows only linearly in beta,
        so feasibility needs theta^2 * mu~ large; pick such a point.
        """
        theta, mu = 0.9, 30.0
        sarah = theory.beta_min(theta, mu, CONST, estimator="sarah")
        svrg = theory.beta_min(theta, mu, CONST, estimator="svrg")
        assert svrg > sarah

    def test_svrg_infeasible_at_tight_theta(self):
        """For moderate theta and small mu the SVRG conditions admit no
        beta at all — the quantitative content of Remark 1(5)."""
        with pytest.raises(InfeasibleParametersError):
            theory.beta_min(0.5, 2.0, CONST, estimator="svrg", beta_max=1e6)

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleParametersError):
            theory.beta_min(1e-9, 2.0, CONST, beta_max=100.0)

    def test_theta_from_beta_inverts_beta_min(self):
        """Eq. (22) evaluated at beta_min recovers theta."""
        theta = 0.4
        mu = 3.0
        beta = theory.beta_min(theta, mu, CONST)
        assert theory.theta_from_beta(mu, beta, CONST) == pytest.approx(theta, rel=1e-6)


class TestTheorem1:
    def test_federated_factor_positive_region(self):
        assert theory.federated_factor(0.05, 20.0, CONST) > 0

    def test_federated_factor_negative_for_small_mu(self):
        assert theory.federated_factor(0.05, 1.0, CONST) < 0

    def test_heterogeneity_shrinks_factor(self):
        """Remark 2(1): larger sigma^2 hurts convergence."""
        hom = theory.federated_factor(0.05, 20.0, CONST)
        het = theory.federated_factor(
            0.05, 20.0, ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=3.0)
        )
        assert het < hom

    def test_theta_cap(self):
        assert theory.theta_accuracy_cap(0.0) == pytest.approx(1 / math.sqrt(2))
        assert theory.theta_accuracy_cap(1.0) == pytest.approx(0.5)

    def test_theta_above_cap_gives_negative_factor(self):
        cap = theory.theta_accuracy_cap(0.0)
        assert theory.federated_factor(cap * 1.01, 1e6, CONST) < 0


class TestCorollary1:
    def test_iterations_scale_inverse_epsilon(self):
        t1 = theory.global_iterations_required(1.0, 0.05, 20.0, CONST, eps=0.1)
        t2 = theory.global_iterations_required(1.0, 0.05, 20.0, CONST, eps=0.01)
        assert t2 == pytest.approx(10 * t1)

    def test_infeasible_factor_raises(self):
        with pytest.raises(InfeasibleParametersError):
            theory.global_iterations_required(1.0, 0.5, 1.0, CONST, eps=0.1)

    def test_stationarity_bound_consistent(self):
        """(17) and (18) are inverses: T from (18) achieves eps in (17)."""
        eps = 0.05
        T = theory.global_iterations_required(2.0, 0.05, 20.0, CONST, eps=eps)
        achieved = theory.stationarity_bound(2.0, 0.05, 20.0, CONST, T=int(math.ceil(T)))
        assert achieved <= eps * 1.01


class TestTrainingTime:
    def test_formula_eq19(self):
        assert theory.training_time(100, 20, d_com=1.0, d_cmp=0.01) == pytest.approx(
            100 * (1.0 + 0.2)
        )

    def test_validation(self):
        with pytest.raises(Exception):
            theory.training_time(0, 20, 1.0, 0.01)
