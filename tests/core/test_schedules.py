"""Tests for step-size schedules and the scheduled solver."""

import numpy as np
import pytest

from repro.core.schedules import (
    ConstantSchedule,
    ExponentialSchedule,
    InverseTimeSchedule,
    ScheduledSGDLocalSolver,
    SqrtSchedule,
)
from repro.exceptions import ConfigurationError
from repro.models import MultinomialLogisticModel


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.5)
        assert s(0) == s(1000) == 0.5

    def test_inverse_time_values(self):
        s = InverseTimeSchedule(1.0, decay=1.0)
        assert s(0) == 1.0
        assert s(1) == pytest.approx(0.5)
        assert s(9) == pytest.approx(0.1)

    def test_sqrt_values(self):
        s = SqrtSchedule(2.0)
        assert s(0) == 2.0
        assert s(3) == pytest.approx(1.0)

    def test_exponential_values(self):
        s = ExponentialSchedule(1.0, gamma=0.5)
        assert s(0) == 1.0
        assert s(2) == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "schedule",
        [
            InverseTimeSchedule(1.0),
            SqrtSchedule(1.0),
            ExponentialSchedule(1.0, 0.9),
        ],
    )
    def test_monotone_decreasing(self, schedule):
        values = [schedule(t) for t in range(50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_negative_step_rejected(self):
        for s in (InverseTimeSchedule(1.0), SqrtSchedule(1.0), ExponentialSchedule(1.0)):
            with pytest.raises(ConfigurationError):
                s(-1)

    def test_bad_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialSchedule(1.0, gamma=1.5)
        with pytest.raises(ConfigurationError):
            ExponentialSchedule(1.0, gamma=0.0)


class TestScheduledSolver:
    @pytest.fixture()
    def problem(self):
        rng = np.random.default_rng(0)
        model = MultinomialLogisticModel(6, 3)
        X = rng.standard_normal((50, 6))
        y = rng.integers(0, 3, 50)
        return model, X, y, model.init_parameters(0)

    def test_counter_persists_across_rounds(self, problem):
        model, X, y, w0 = problem
        solver = ScheduledSGDLocalSolver(
            schedule=InverseTimeSchedule(0.1), num_steps=5, batch_size=8
        )
        r1 = solver.solve(model, X, y, w0, np.random.default_rng(1))
        r2 = solver.solve(model, X, y, w0, np.random.default_rng(2))
        assert r1.diagnostics["first_eta"] > r2.diagnostics["first_eta"]
        assert solver.global_step == 10

    def test_constant_schedule_reduces_loss(self, problem):
        model, X, y, w0 = problem
        solver = ScheduledSGDLocalSolver(
            schedule=ConstantSchedule(0.05), num_steps=40, batch_size=16, mu=0.1
        )
        r = solver.solve(model, X, y, w0, np.random.default_rng(3))
        assert model.loss(r.w_local, X, y) < model.loss(w0, X, y)

    def test_diminishing_eventually_stalls_relative_to_constant(self, problem):
        """Footnote 1's practical point: an aggressively diminishing
        schedule makes less progress over the same number of steps."""
        model, X, y, w0 = problem
        fast_decay = ScheduledSGDLocalSolver(
            schedule=InverseTimeSchedule(0.05, decay=5.0),
            num_steps=80, batch_size=16,
        )
        constant = ScheduledSGDLocalSolver(
            schedule=ConstantSchedule(0.05), num_steps=80, batch_size=16
        )
        r_decay = fast_decay.solve(model, X, y, w0, np.random.default_rng(4))
        r_const = constant.solve(model, X, y, w0, np.random.default_rng(4))
        assert model.loss(r_const.w_local, X, y) < model.loss(r_decay.w_local, X, y)

    def test_federated_integration(self, tiny_dataset, tiny_model_factory):
        from repro.fl.client import Client
        from repro.fl.server import FederatedServer

        model = tiny_model_factory()
        solver = ScheduledSGDLocalSolver(
            schedule=SqrtSchedule(0.05), num_steps=5, batch_size=8, mu=0.1
        )
        clients = [
            Client(d.device_id, d, model, solver, base_seed=0)
            for d in tiny_dataset.devices
        ]
        server = FederatedServer(clients, model)
        history, _ = server.train(model.init_parameters(0), 8, eval_every=4)
        assert history.final("train_loss") < history.records[0].train_loss
