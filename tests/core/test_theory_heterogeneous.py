"""Tests for aggregate_heterogeneous_constants (end-of-§3 note)."""

import pytest

from repro.core.theory import ProblemConstants, aggregate_heterogeneous_constants
from repro.exceptions import InfeasibleParametersError


class TestAggregation:
    def test_takes_worst_case_L_and_lambda(self):
        c = aggregate_heterogeneous_constants([1.0, 3.0, 2.0], [0.1, 0.5, 0.2])
        assert c.L == 3.0
        assert c.lam == 0.5

    def test_sigma_weighted_mean_of_squares(self):
        c = aggregate_heterogeneous_constants(
            [1.0, 1.0], [0.0, 0.0], weights=[1.0, 3.0], sigma_values=[2.0, 0.0]
        )
        # sum p_n sigma_n^2 = 0.25*4 + 0.75*0 = 1
        assert c.sigma_bar_sq == pytest.approx(1.0)

    def test_uniform_weights_default(self):
        c = aggregate_heterogeneous_constants(
            [1.0, 1.0], [0.0, 0.0], sigma_values=[1.0, 3.0]
        )
        assert c.sigma_bar_sq == pytest.approx(0.5 * 1 + 0.5 * 9)

    def test_returns_problem_constants(self):
        c = aggregate_heterogeneous_constants([2.0], [0.3])
        assert isinstance(c, ProblemConstants)

    def test_empty_rejected(self):
        with pytest.raises(InfeasibleParametersError):
            aggregate_heterogeneous_constants([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(InfeasibleParametersError):
            aggregate_heterogeneous_constants([1.0, 2.0], [0.1])
        with pytest.raises(InfeasibleParametersError):
            aggregate_heterogeneous_constants(
                [1.0, 2.0], [0.1, 0.2], sigma_values=[1.0]
            )

    def test_bad_weights_rejected(self):
        with pytest.raises(InfeasibleParametersError):
            aggregate_heterogeneous_constants([1.0, 2.0], [0.1, 0.2], weights=[1.0])
        with pytest.raises(InfeasibleParametersError):
            aggregate_heterogeneous_constants(
                [1.0, 2.0], [0.1, 0.2], weights=[-1.0, 2.0]
            )
