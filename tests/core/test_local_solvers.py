"""Tests for the local solvers (FedAvg / FedProx / FedProxVR / GD)."""

import numpy as np
import pytest

from repro.core.local import (
    FedAvgLocalSolver,
    FedProxLocalSolver,
    FedProxVRLocalSolver,
    GDLocalSolver,
)
from repro.exceptions import ConfigurationError
from repro.models import LinearRegressionModel, MultinomialLogisticModel


@pytest.fixture()
def convex_problem():
    rng = np.random.default_rng(0)
    model = MultinomialLogisticModel(6, 3)
    X = rng.standard_normal((60, 6))
    y = rng.integers(0, 3, 60)
    w0 = model.init_parameters(0)
    return model, X, y, w0


ETA = 0.05


class TestFedAvgLocalSolver:
    def test_decreases_loss(self, convex_problem):
        model, X, y, w0 = convex_problem
        solver = FedAvgLocalSolver(step_size=ETA, num_steps=30, batch_size=16)
        result = solver.solve(model, X, y, w0, np.random.default_rng(1))
        assert model.loss(result.w_local, X, y) < model.loss(w0, X, y)

    def test_zero_steps_returns_start(self, convex_problem):
        model, X, y, w0 = convex_problem
        solver = FedAvgLocalSolver(step_size=ETA, num_steps=0, batch_size=16)
        result = solver.solve(model, X, y, w0, np.random.default_rng(1))
        np.testing.assert_allclose(result.w_local, w0)

    def test_counts(self, convex_problem):
        model, X, y, w0 = convex_problem
        solver = FedAvgLocalSolver(step_size=ETA, num_steps=7, batch_size=16)
        result = solver.solve(model, X, y, w0, np.random.default_rng(1))
        assert result.num_steps == 7
        assert result.num_gradient_evaluations == 8  # 7 steps + 1 diagnostic

    def test_does_not_mutate_w_global(self, convex_problem):
        model, X, y, w0 = convex_problem
        snapshot = w0.copy()
        solver = FedAvgLocalSolver(step_size=ETA, num_steps=5, batch_size=8)
        solver.solve(model, X, y, w0, np.random.default_rng(2))
        np.testing.assert_array_equal(w0, snapshot)

    def test_batch_larger_than_data_uses_all(self):
        rng = np.random.default_rng(1)
        model = LinearRegressionModel(3, fit_intercept=False)
        X = rng.standard_normal((5, 3))
        y = rng.standard_normal(5)
        solver = FedAvgLocalSolver(step_size=0.01, num_steps=3, batch_size=100)
        result = solver.solve(model, X, y, np.zeros(3), rng)
        # full-batch steps are deterministic GD here
        w = np.zeros(3)
        for _ in range(3):
            w = w - 0.01 * model.gradient(w, X, y)
        np.testing.assert_allclose(result.w_local, w)


class TestFedProxLocalSolver:
    def test_mu_zero_matches_fedavg(self, convex_problem):
        model, X, y, w0 = convex_problem
        avg = FedAvgLocalSolver(step_size=ETA, num_steps=10, batch_size=16)
        prox = FedProxLocalSolver(step_size=ETA, num_steps=10, batch_size=16, mu=0.0)
        r_avg = avg.solve(model, X, y, w0, np.random.default_rng(3))
        r_prox = prox.solve(model, X, y, w0, np.random.default_rng(3))
        np.testing.assert_allclose(r_avg.w_local, r_prox.w_local, atol=1e-12)

    def test_large_mu_stays_near_anchor(self, convex_problem):
        model, X, y, w0 = convex_problem
        small = FedProxLocalSolver(step_size=ETA, num_steps=20, batch_size=16, mu=0.01)
        large = FedProxLocalSolver(step_size=ETA, num_steps=20, batch_size=16, mu=100.0)
        r_small = small.solve(model, X, y, w0, np.random.default_rng(4))
        r_large = large.solve(model, X, y, w0, np.random.default_rng(4))
        assert np.linalg.norm(r_large.w_local - w0) < np.linalg.norm(
            r_small.w_local - w0
        )

    def test_reports_achieved_accuracy(self, convex_problem):
        model, X, y, w0 = convex_problem
        solver = FedProxLocalSolver(step_size=ETA, num_steps=30, batch_size=16, mu=0.5)
        result = solver.solve(model, X, y, w0, np.random.default_rng(5))
        assert result.achieved_accuracy is not None
        assert result.achieved_accuracy < 1.0  # made progress on J_n


class TestFedProxVRLocalSolver:
    @pytest.mark.parametrize("estimator", ["svrg", "sarah", "sgd"])
    def test_decreases_surrogate(self, estimator, convex_problem):
        model, X, y, w0 = convex_problem
        solver = FedProxVRLocalSolver(
            step_size=ETA, num_steps=30, batch_size=16, mu=0.1, estimator=estimator
        )
        result = solver.solve(model, X, y, w0, np.random.default_rng(6))
        assert model.loss(result.w_local, X, y) < model.loss(w0, X, y)
        assert result.achieved_accuracy is not None

    def test_name_reflects_estimator(self):
        solver = FedProxVRLocalSolver(
            step_size=0.1, num_steps=1, batch_size=4, mu=0.0, estimator="svrg"
        )
        assert solver.name == "fedproxvr-svrg"

    def test_theta_early_stopping(self, convex_problem):
        model, X, y, w0 = convex_problem
        solver = FedProxVRLocalSolver(
            step_size=ETA,
            num_steps=500,
            batch_size=32,
            mu=1.0,
            estimator="svrg",
            theta=0.9,
            check_interval=5,
        )
        result = solver.solve(model, X, y, w0, np.random.default_rng(7))
        assert result.diagnostics["stopped_early"] == 1.0
        assert result.num_steps < 500
        # the stopped iterate satisfies the certificate at its check point
        assert result.achieved_accuracy <= 0.9 + 0.2  # last-iterate drift tolerance

    def test_invalid_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            FedProxVRLocalSolver(
                step_size=0.1, num_steps=1, batch_size=4, mu=0.0, theta=1.5
            )

    def test_iterate_selection_modes_differ(self, convex_problem):
        model, X, y, w0 = convex_problem
        outs = {}
        for mode in ("random", "last", "average"):
            solver = FedProxVRLocalSolver(
                step_size=ETA,
                num_steps=15,
                batch_size=16,
                mu=0.1,
                estimator="sarah",
                iterate_selection=mode,
            )
            outs[mode] = solver.solve(model, X, y, w0, np.random.default_rng(8)).w_local
        assert not np.allclose(outs["last"], outs["average"])

    def test_random_selection_candidates_exclude_final(self, convex_problem):
        """Line 10 draws from {w^0..w^tau}, never w^{tau+1}."""
        model, X, y, w0 = convex_problem
        solver = FedProxVRLocalSolver(
            step_size=ETA,
            num_steps=1,
            batch_size=16,
            mu=0.0,
            estimator="svrg",
            iterate_selection="random",
            evaluate_final=False,
        )
        last_solver = FedProxVRLocalSolver(
            step_size=ETA,
            num_steps=1,
            batch_size=16,
            mu=0.0,
            estimator="svrg",
            iterate_selection="last",
            evaluate_final=False,
        )
        w_last = last_solver.solve(model, X, y, w0, np.random.default_rng(9)).w_local
        # tau=1: candidates are {w0, w1}; over many draws we must never
        # see the final iterate w2 == w_last.
        for seed in range(10):
            w_out = solver.solve(model, X, y, w0, np.random.default_rng(seed)).w_local
            assert not np.allclose(w_out, w_last)

    def test_evaluate_final_flag_skips_cost(self, convex_problem):
        model, X, y, w0 = convex_problem
        on = FedProxVRLocalSolver(
            step_size=ETA, num_steps=5, batch_size=16, mu=0.1, evaluate_final=True
        ).solve(model, X, y, w0, np.random.default_rng(10))
        off = FedProxVRLocalSolver(
            step_size=ETA, num_steps=5, batch_size=16, mu=0.1, evaluate_final=False
        ).solve(model, X, y, w0, np.random.default_rng(10))
        assert off.final_surrogate_grad_norm is None
        assert off.num_gradient_evaluations == on.num_gradient_evaluations - 1

    def test_concurrent_solves_do_not_share_state(self, convex_problem):
        """Regression test for the shared-estimator race: interleaving a
        second solve must not change the first one's result."""
        model, X, y, w0 = convex_problem
        solver = FedProxVRLocalSolver(
            step_size=ETA, num_steps=10, batch_size=16, mu=0.1, estimator="sarah"
        )
        alone = solver.solve(model, X, y, w0, np.random.default_rng(11)).w_local
        _ = solver.solve(model, X, y, w0 + 1.0, np.random.default_rng(12))
        again = solver.solve(model, X, y, w0, np.random.default_rng(11)).w_local
        np.testing.assert_array_equal(alone, again)


class TestGDLocalSolver:
    def test_deterministic(self, convex_problem):
        model, X, y, w0 = convex_problem
        solver = GDLocalSolver(step_size=ETA, num_steps=10, mu=0.1)
        a = solver.solve(model, X, y, w0, np.random.default_rng(1)).w_local
        b = solver.solve(model, X, y, w0, np.random.default_rng(999)).w_local
        np.testing.assert_array_equal(a, b)

    def test_full_pass_cost_accounting(self, convex_problem):
        model, X, y, w0 = convex_problem
        solver = GDLocalSolver(step_size=ETA, num_steps=4, batch_size=16, mu=0.0)
        result = solver.solve(model, X, y, w0, np.random.default_rng(1))
        units_per_pass = int(np.ceil(60 / 16))
        assert result.num_gradient_evaluations == 5 * units_per_pass

    def test_converges_on_quadratic(self):
        rng = np.random.default_rng(2)
        model = LinearRegressionModel(4, fit_intercept=False)
        X = rng.standard_normal((30, 4))
        w_true = rng.standard_normal(4)
        y = X @ w_true
        L = model.smoothness(X)
        solver = GDLocalSolver(step_size=1.0 / L, num_steps=500, mu=0.0)
        result = solver.solve(model, X, y, np.zeros(4), rng)
        np.testing.assert_allclose(result.w_local, w_true, atol=1e-3)
