"""Tests for the exception hierarchy and the Module base class."""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    DimensionMismatchError,
    InfeasibleParametersError,
    ReproError,
)
from repro.nn.module import Module


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            ConvergenceError,
            DimensionMismatchError,
            InfeasibleParametersError,
        ):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        """Callers catching ValueError still catch configuration issues."""
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(DimensionMismatchError, ValueError)
        assert issubclass(InfeasibleParametersError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(ConvergenceError, RuntimeError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise InfeasibleParametersError("Theta <= 0")


class TestModuleDefaults:
    def test_abstract_methods_raise(self):
        m = Module()
        with pytest.raises(NotImplementedError):
            m.forward(np.zeros((1, 1)))
        with pytest.raises(NotImplementedError):
            m.backward(np.zeros((1, 1)))

    def test_default_parameters_empty(self):
        assert Module().parameters() == []
        assert Module().gradients() == []
        assert Module().num_parameters == 0

    def test_zero_gradients_noop_when_stateless(self):
        Module().zero_gradients()  # must not raise

    def test_call_dispatches_to_forward(self):
        class Doubler(Module):
            def forward(self, x, *, train=True):
                return 2 * np.asarray(x)

        np.testing.assert_array_equal(Doubler()(np.ones(3)), 2 * np.ones(3))

    def test_zero_gradients_clears_buffers(self):
        class WithParam(Module):
            def __init__(self):
                self.p = np.ones(3)
                self.g = np.ones(3)

            def parameters(self):
                return [self.p]

            def gradients(self):
                return [self.g]

        layer = WithParam()
        layer.zero_gradients()
        assert not layer.g.any()
        assert layer.p.all()  # parameters untouched
