"""Heterogeneity study: measuring sigma_bar^2 and the role of mu (Fig. 4).

Part 1 estimates Assumption 1's empirical heterogeneity ``sigma_bar^2``
across increasingly non-IID ``Synthetic(alpha, beta)`` federations.

Part 2 reproduces Fig. 4's phenomenon: with ``mu = 0`` FedProxVR's loss
is unstable/divergent on heterogeneous data, ``mu > 0`` stabilizes it,
and a too-large ``mu`` slows convergence.

Run:  python examples/heterogeneity_study.py
"""

from repro import (
    FederatedRunConfig,
    MultinomialLogisticModel,
    make_synthetic,
    run_federated,
)
from repro.fl.client import Client
from repro.fl.metrics import heterogeneity_sigma_bar_sq
from repro.core.local import FedAvgLocalSolver


def measure_heterogeneity() -> None:
    print("=== empirical sigma_bar^2 at the initial model ===")
    for alpha, beta, iid in [(0.0, 0.0, True), (0.0, 0.0, False), (0.5, 0.5, False), (1.0, 1.0, False)]:
        ds = make_synthetic(alpha, beta, num_devices=20, iid=iid, seed=0)
        model = MultinomialLogisticModel(ds.num_features, ds.num_classes)
        solver = FedAvgLocalSolver(step_size=0.1, num_steps=1, batch_size=32)
        clients = [
            Client(d.device_id, d, model, solver, base_seed=0) for d in ds.devices
        ]
        w0 = model.init_parameters(0)
        sigma_sq = heterogeneity_sigma_bar_sq(model, clients, w0)
        print(f"  {ds.name:>22s}: sigma_bar^2 = {sigma_sq:8.3f}")
    print()


def mu_tradeoff() -> None:
    print("=== Fig. 4: proximal penalty mu vs convergence ===")
    ds = make_synthetic(2.0, 2.0, num_devices=30, seed=0)

    def model_factory() -> MultinomialLogisticModel:
        return MultinomialLogisticModel(ds.num_features, ds.num_classes)

    print("-- aggressive step size (eta = 2): mu = 0 is unstable --")
    for mu in (0.0, 0.5, 2.0, 5.0):
        config = FederatedRunConfig(
            algorithm="fedproxvr-svrg",
            num_rounds=30,
            num_local_steps=30,
            beta=0.5,
            smoothness=1.0,  # underestimate L on purpose -> large eta
            mu=mu,
            batch_size=16,
            seed=2,
            eval_every=6,
        )
        history, _ = run_federated(ds, model_factory, config)
        losses = ", ".join(f"{r.train_loss:.3f}" for r in history.records)
        final = history.final("train_loss")
        tag = "UNSTABLE" if final > 2.0 else "converged"
        print(f"  mu={mu:<5g} [{tag:9s}] loss: {losses}")

    print("-- conservative step size: larger mu converges more slowly --")
    for mu in (0.1, 1.0, 10.0):
        config = FederatedRunConfig(
            algorithm="fedproxvr-svrg",
            num_rounds=60,
            num_local_steps=30,
            beta=4.0,
            mu=mu,
            batch_size=16,
            seed=2,
            eval_every=12,
        )
        history, _ = run_federated(ds, model_factory, config)
        losses = ", ".join(f"{r.train_loss:.3f}" for r in history.records)
        print(f"  mu={mu:<5g} loss: {losses}")


def main() -> None:
    measure_heterogeneity()
    mu_tradeoff()


if __name__ == "__main__":
    main()
