"""Statistically careful comparison: replication, pairing, sparklines.

Replicates the FedAvg-vs-FedProxVR comparison over several seeds,
reports the paired per-seed advantage (the right statistic: both runs
share initialization and data order within a seed), and renders the
mean curves as terminal sparklines.

Run:  python examples/multiseed_comparison.py
"""

from repro import FederatedRunConfig, MultinomialLogisticModel, make_synthetic
from repro.analysis import compare_replicated, paired_seed_advantage, summarize
from repro.viz import history_sparklines


def main() -> None:
    dataset = make_synthetic(alpha=1.0, beta=1.0, num_devices=15, seed=0)

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    base = dict(num_rounds=40, num_local_steps=15, beta=5.0, batch_size=16,
                eval_every=5)
    configs = {
        "fedavg": FederatedRunConfig(algorithm="fedavg", mu=0.0, **base),
        "fedproxvr-svrg": FederatedRunConfig(
            algorithm="fedproxvr-svrg", mu=0.1, **base
        ),
        "fedproxvr-sarah": FederatedRunConfig(
            algorithm="fedproxvr-sarah", mu=0.1, **base
        ),
    }
    seeds = [0, 1, 2, 3]
    runs = compare_replicated(dataset, factory, configs, seeds=seeds)

    print("=== final metrics, mean +- std over seeds ===")
    print(summarize(runs))

    print("\n=== train-loss curves (seed 0) ===")
    print(history_sparklines([runs[k].histories[0] for k in configs]))

    print("\n=== paired per-seed advantage over FedAvg (train loss) ===")
    for name in ("fedproxvr-svrg", "fedproxvr-sarah"):
        stats = paired_seed_advantage(runs[name], runs["fedavg"])
        print(
            f"  {name:>16s}: {stats['mean_advantage']:+.5f} "
            f"+- {stats['std_advantage']:.5f}  "
            f"(wins {stats['win_fraction']:.0%} of {stats['num_seeds']} seeds)"
        )


if __name__ == "__main__":
    main()
