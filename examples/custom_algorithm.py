"""Extending the library: plug in a custom local solver.

Demonstrates the extension seam the framework is built around: any
object implementing :class:`repro.core.local.LocalSolver` drops into the
same server/executor/metrics machinery as the built-ins.  Here we build
a *momentum* variant of the proximal local update (heavy-ball on the
device surrogate) and race it against FedProxVR.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro import MultinomialLogisticModel, make_synthetic
from repro.core.local import FedProxVRLocalSolver, LocalSolveResult, LocalSolver
from repro.core.proximal import QuadraticProx
from repro.fl.client import Client
from repro.fl.history import format_comparison
from repro.fl.server import FederatedServer


class MomentumProxLocalSolver(LocalSolver):
    """Heavy-ball proximal SGD on the device surrogate J_n."""

    name = "fedprox-momentum"

    def __init__(self, *, step_size, num_steps, batch_size, mu, momentum=0.9):
        super().__init__(
            step_size=step_size, num_steps=num_steps, batch_size=batch_size
        )
        self.mu = mu
        self.momentum = momentum

    def solve(self, model, X, y, w_global, rng):
        n = X.shape[0]
        prox = QuadraticProx(self.mu, w_global)
        w = np.array(w_global, copy=True)
        velocity = np.zeros_like(w)
        start_norm = float(np.linalg.norm(model.gradient(w, X, y)))
        for _ in range(self.num_steps):
            idx = self._sample_batch(rng, n)
            g = model.gradient(w, X[idx], y[idx])
            velocity = self.momentum * velocity - self.step_size * g
            w = prox(w + velocity, self.step_size)
        final = model.gradient(w, X, y) + prox.gradient(w)
        return LocalSolveResult(
            w_local=w,
            num_steps=self.num_steps,
            num_gradient_evaluations=self.num_steps + 2,
            start_grad_norm=start_norm,
            final_surrogate_grad_norm=float(np.linalg.norm(final)),
        )


def train(dataset, solver, name, rounds=60):
    model = MultinomialLogisticModel(dataset.num_features, dataset.num_classes)
    clients = [
        Client(d.device_id, d, model, solver, base_seed=0) for d in dataset.devices
    ]
    server = FederatedServer(clients, model)
    history, _ = server.train(
        model.init_parameters(0), rounds, algorithm_name=name,
        dataset_name=dataset.name, eval_every=10,
    )
    return history


def main() -> None:
    dataset = make_synthetic(alpha=1.0, beta=1.0, num_devices=20, seed=0)
    X, _ = dataset.global_train()
    L = MultinomialLogisticModel(
        dataset.num_features, dataset.num_classes
    ).smoothness(X)
    eta = 1.0 / (5.0 * L)

    custom = MomentumProxLocalSolver(
        step_size=eta, num_steps=20, batch_size=32, mu=0.1, momentum=0.9
    )
    reference = FedProxVRLocalSolver(
        step_size=eta, num_steps=20, batch_size=32, mu=0.1, estimator="sarah"
    )

    histories = [
        train(dataset, custom, "fedprox-momentum"),
        train(dataset, reference, "fedproxvr-sarah"),
    ]
    for h in histories:
        losses = " -> ".join(f"{r.train_loss:.4f}" for r in h.records)
        print(f"{h.algorithm:>18s}: {losses}")
    print()
    print(format_comparison(histories))


if __name__ == "__main__":
    main()
