"""Extension example: non-smooth penalties through the same prox seam.

The paper's framework inherits ProxSVRG/ProxSARAH's ability to handle
non-smooth composite objectives.  Here we run the *local* proximal
variance-reduced loop with an L1 prox to recover a sparse linear model
on one device — demonstrating that :class:`FedProxVRLocalSolver`'s
machinery (estimators + prox steps) generalizes beyond the quadratic
consensus penalty.

Run:  python examples/sparse_recovery.py
"""

import numpy as np

from repro import LinearRegressionModel, L1Prox, make_estimator


def prox_vr_lasso(
    model: LinearRegressionModel,
    X: np.ndarray,
    y: np.ndarray,
    *,
    lam: float,
    eta: float,
    num_epochs: int,
    steps_per_epoch: int,
    batch_size: int,
    seed: int = 0,
) -> np.ndarray:
    """ProxSVRG for lasso: outer anchor + inner prox-VR steps."""
    rng = np.random.default_rng(seed)
    prox = L1Prox(lam)
    estimator = make_estimator("svrg")
    w = np.zeros(model.num_parameters)
    n = X.shape[0]
    for _ in range(num_epochs):
        full_grad = model.gradient(w, X, y)
        v = estimator.start_epoch(w, full_grad)
        w = prox(w - eta * v, eta)
        for _ in range(steps_per_epoch):
            idx = rng.choice(n, size=min(batch_size, n), replace=False)
            v = estimator.estimate(model, X[idx], y[idx], w)
            w = prox(w - eta * v, eta)
    return w


def main() -> None:
    rng = np.random.default_rng(0)
    n, d, k = 400, 120, 8  # n samples, d features, k true non-zeros
    X = rng.standard_normal((n, d))
    w_true = np.zeros(d)
    support = rng.choice(d, size=k, replace=False)
    w_true[support] = rng.uniform(1.0, 3.0, size=k) * rng.choice([-1, 1], size=k)
    y = X @ w_true + 0.05 * rng.standard_normal(n)

    model = LinearRegressionModel(d, fit_intercept=False)
    L = model.smoothness(X)
    w_hat = prox_vr_lasso(
        model, X, y,
        lam=0.08, eta=1.0 / (3.0 * L),
        num_epochs=30, steps_per_epoch=50, batch_size=16,
    )

    recovered = np.flatnonzero(np.abs(w_hat) > 0.1)
    print(f"true support     : {sorted(support.tolist())}")
    print(f"recovered support: {recovered.tolist()}")
    overlap = len(set(support.tolist()) & set(recovered.tolist()))
    print(f"support overlap  : {overlap}/{k}")
    err = np.linalg.norm(w_hat - w_true) / np.linalg.norm(w_true)
    print(f"relative L2 error: {err:.4f}")
    print(f"sparsity         : {np.count_nonzero(np.abs(w_hat) > 1e-8)}/{d} non-zeros")


if __name__ == "__main__":
    main()
