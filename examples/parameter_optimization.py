"""§4.3 walkthrough: from delay constants to runnable hyperparameters.

1. Sweep the weight factor ``gamma = d_cmp / d_com`` and print the Fig. 1
   optimal-parameter curves.
2. Pick one operating point, translate the optimum into a runnable
   ``(beta, mu, tau)`` config, and train FedProxVR with it — closing the
   loop between the analysis and the experiment harness.

Run:  python examples/parameter_optimization.py
"""

import numpy as np

from repro import (
    FederatedRunConfig,
    MultinomialLogisticModel,
    ProblemConstants,
    make_synthetic,
    param_opt,
    run_federated,
)


def main() -> None:
    # The Fig. 1 caption's constants: L = 1, lambda = 0.5.
    for sigma_sq in (0.0, 1.0):
        constants = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=sigma_sq)
        print(f"=== Fig. 1 sweep, sigma_bar^2 = {sigma_sq} ===")
        for opt in param_opt.sweep_gamma(np.geomspace(1e-4, 1.0, 7), constants):
            print("  " + opt.as_row())
        print()

    # Operating point: communication 100x more expensive than one
    # gradient evaluation -> gamma = 0.01.
    constants = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=1.0)
    rec = param_opt.recommend_run_config(0.01, constants)
    print("recommended run config:", rec)

    dataset = make_synthetic(alpha=1.0, beta=1.0, num_devices=20, seed=3)

    def model_factory() -> MultinomialLogisticModel:
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    config = FederatedRunConfig(
        algorithm="fedproxvr-sarah",
        num_rounds=40,
        num_local_steps=min(rec["tau"], 40),  # cap tau for a quick demo
        beta=rec["beta"],
        mu=rec["mu"],
        batch_size=32,
        seed=7,
        eval_every=10,
    )
    history, _ = run_federated(dataset, model_factory, config)
    print("\ntraining with the recommended parameters:")
    for record in history.records:
        print(
            f"  round {record.round_index:3d}  loss {record.train_loss:.4f}  "
            f"acc {record.test_accuracy:.4f}  sim-time {record.sim_time:9.1f}"
        )


if __name__ == "__main__":
    main()
