"""Telemetry demo: trace a short federated run and summarize it.

Runs FedProxVR-SARAH for a few rounds on a small synthetic federation
with the ``repro.obs`` telemetry session active, writing

* ``trace.jsonl``   — the structured event trace (spans + per-round metrics),
* ``metrics.csv``   — the tabular per-round / per-run metric summary,

then renders the span-tree / hotspot report in-process (the same output
as ``repro obs-report trace.jsonl``).

Run:  python examples/trace_run.py [output-dir]
"""

import sys

from repro import (
    FederatedRunConfig,
    MultinomialLogisticModel,
    make_synthetic,
    run_federated,
)
from repro.obs import CsvMetricsSink, JsonlSink, StderrReporter, telemetry
from repro.obs.report import render_report


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    trace_path = f"{out_dir}/trace.jsonl"
    metrics_path = f"{out_dir}/metrics.csv"

    dataset = make_synthetic(
        alpha=1.0, beta=1.0, num_devices=10, num_features=60, seed=0
    )
    print(dataset.summary())

    telemetry.configure(
        [JsonlSink(trace_path), CsvMetricsSink(metrics_path), StderrReporter()],
        extra_meta={"example": "trace_run"},
    )
    try:
        history, _ = run_federated(
            dataset,
            lambda: MultinomialLogisticModel(
                dataset.num_features, dataset.num_classes
            ),
            FederatedRunConfig(
                algorithm="fedproxvr-sarah",
                num_rounds=10,
                num_local_steps=10,
                beta=5.0,
                mu=0.1,
                batch_size=32,
                seed=1,
                eval_every=2,
            ),
        )
    finally:
        telemetry.shutdown()

    print(f"\nfinal loss {history.final('train_loss'):.4f}, "
          f"straggler gap (last round) "
          f"{history.records[-1].straggler_gap:.6f}s\n")
    print(render_report(trace_path, top=5))
    print(f"artifacts: {trace_path}  {metrics_path}")


if __name__ == "__main__":
    main()
