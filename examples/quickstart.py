"""Quickstart: FedProxVR vs FedAvg on a heterogeneous synthetic task.

Builds a ``Synthetic(1,1)`` federation of 30 devices, trains multinomial
logistic regression with FedAvg and both FedProxVR variants under the
same ``(beta, tau, B)``, and prints the paper-style convergence
comparison.

Run:  python examples/quickstart.py
"""

from repro import (
    FederatedRunConfig,
    MultinomialLogisticModel,
    make_synthetic,
    run_federated,
)
from repro.fl.history import format_comparison


def main() -> None:
    dataset = make_synthetic(
        alpha=1.0, beta=1.0, num_devices=30, num_features=60, seed=0
    )
    print(dataset.summary())
    print()

    def model_factory() -> MultinomialLogisticModel:
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    histories = []
    for algorithm, mu in [
        ("fedavg", 0.0),
        ("fedproxvr-svrg", 0.1),
        ("fedproxvr-sarah", 0.1),
    ]:
        config = FederatedRunConfig(
            algorithm=algorithm,
            num_rounds=100,
            num_local_steps=20,
            beta=5.0,
            mu=mu,
            batch_size=32,
            seed=1,
            eval_every=10,
        )
        history, _ = run_federated(dataset, model_factory, config)
        histories.append(history)
        losses = " -> ".join(f"{r.train_loss:.4f}" for r in history.records[::2])
        print(f"{algorithm:>18s}: loss {losses}")

    print()
    print(format_comparison(histories))


if __name__ == "__main__":
    main()
