"""Non-convex federated task: the paper's CNN on the MNIST-like dataset.

A reduced-scale version of the Fig. 3 experiment (fewer devices and a
channel-scaled CNN so it runs in about a minute on a laptop): FedAvg vs
FedProxVR(SVRG) on pathologically non-IID image shards.

Run:  python examples/nonconvex_cnn.py
"""

from repro import (
    FederatedRunConfig,
    make_digits,
    make_paper_cnn_model,
    run_federated,
)


def main() -> None:
    dataset = make_digits(
        num_devices=5, num_samples=800, labels_per_device=2,
        min_size=60, max_size=250, seed=0,
    )
    print(dataset.summary())

    def model_factory():
        # channel_scale=0.25 -> 8/16-channel convs; same architecture
        # and code path as the paper's 32/64 CNN at 1/16 the FLOPs.
        return make_paper_cnn_model(
            image_shape=(1, 28, 28), num_classes=10, channel_scale=0.25, seed=0
        )

    for algorithm, mu in [("fedavg", 0.0), ("fedproxvr-svrg", 0.01)]:
        config = FederatedRunConfig(
            algorithm=algorithm,
            num_rounds=10,
            num_local_steps=10,
            beta=10.0,
            mu=mu,
            batch_size=64,
            seed=4,
            eval_every=2,
            executor="thread",  # clients run concurrently (per-client models)
            max_workers=5,
        )
        history, _ = run_federated(dataset, model_factory, config)
        print(f"\n{algorithm}:")
        for record in history.records:
            print(
                f"  round {record.round_index:2d}  loss {record.train_loss:.4f}  "
                f"test-acc {record.test_accuracy:.4f}"
            )


if __name__ == "__main__":
    main()
